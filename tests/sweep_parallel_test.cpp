/// \file sweep_parallel_test.cpp
/// The sweep engine's contract: fanning a sweep across worker threads
/// changes wall-clock time and nothing else. Serial loops and
/// ParallelSweep with 1, 2 and 8 workers must produce bit-identical
/// ResultRows, in submission order, run after run.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "harness/sweep.hpp"
#include "util/thread_pool.hpp"

namespace hxsp {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool basics.
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.wait_idle();  // no jobs: returns immediately
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&] { ++count; });
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ResolveWorkersDefaultsToHardware) {
  EXPECT_GE(ThreadPool::resolve_workers(0), 1);
  EXPECT_EQ(ThreadPool::resolve_workers(3), 3);
}

// ---------------------------------------------------------------------------
// ParallelSweep determinism.
// ---------------------------------------------------------------------------

ExperimentSpec small_spec() {
  ExperimentSpec s;
  s.sides = {4, 4};
  s.servers_per_switch = 2;
  s.mechanism = "polsp";
  s.pattern = "uniform";
  s.sim.num_vcs = 4;
  s.warmup = 300;
  s.measure = 600;
  s.seed = 7;
  return s;
}

void expect_identical(const ResultRow& a, const ResultRow& b,
                      const char* what) {
  EXPECT_EQ(a.mechanism, b.mechanism) << what;
  EXPECT_EQ(a.pattern, b.pattern) << what;
  EXPECT_EQ(a.offered, b.offered) << what;
  EXPECT_EQ(a.generated, b.generated) << what;
  EXPECT_EQ(a.accepted, b.accepted) << what;
  EXPECT_EQ(a.avg_latency, b.avg_latency) << what;
  EXPECT_EQ(a.jain, b.jain) << what;
  EXPECT_EQ(a.escape_frac, b.escape_frac) << what;
  EXPECT_EQ(a.forced_frac, b.forced_frac) << what;
  EXPECT_EQ(a.p99_latency, b.p99_latency) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.packets, b.packets) << what;
}

TEST(ParallelSweep, MatchesSerialLoopBitIdentically) {
  const ExperimentSpec spec = small_spec();
  const std::vector<double> loads = {0.2, 0.5, 0.8, 1.0};

  // The pre-engine way: one Experiment reused across the load sweep.
  Experiment serial_exp(spec);
  const std::vector<ResultRow> serial = sweep_loads(serial_exp, loads);
  ASSERT_EQ(serial.size(), loads.size());

  const auto points = ParallelSweep::expand_loads(spec, loads);
  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE(testing::Message() << "workers=" << workers);
    ParallelSweep sweep(workers);
    EXPECT_EQ(sweep.workers(), workers);
    const std::vector<ResultRow> par = sweep.run(points);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      expect_identical(serial[i], par[i], "serial vs parallel");
  }
}

TEST(ParallelSweep, RepeatedRunsAreIdentical) {
  const auto points =
      ParallelSweep::expand_loads(small_spec(), {0.4, 0.9, 1.0});
  ParallelSweep sweep(2);
  const auto first = sweep.run(points);
  const auto second = sweep.run(points);  // same pool, fresh run
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    expect_identical(first[i], second[i], "run 1 vs run 2");
}

TEST(ParallelSweep, ResultsDeliveredInSubmissionOrder) {
  // Mixed costs (different loads and seeds) so workers finish out of
  // order; on_result must still observe 0, 1, 2, ...
  ExperimentSpec spec = small_spec();
  std::vector<SweepPoint> points;
  for (int t = 0; t < 8; ++t) {
    SweepPoint p{spec, t % 2 ? 1.0 : 0.1};
    p.spec.seed = 100 + static_cast<std::uint64_t>(t);
    p.spec.measure = t % 2 ? 900 : 200;
    points.push_back(p);
  }
  ParallelSweep sweep(4);
  std::vector<std::size_t> order;
  const auto rows = sweep.run(
      points, [&](std::size_t i, const ResultRow& r) {
        order.push_back(i);
        EXPECT_EQ(r.offered, points[i].offered);
      });
  ASSERT_EQ(rows.size(), points.size());
  std::vector<std::size_t> expected(points.size());
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelSweep, ExpandSeedsGivesDistinctStreams) {
  const auto points = ParallelSweep::expand_seeds(small_spec(), 1.0, 40, 3);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].spec.seed, 40u);
  EXPECT_EQ(points[1].spec.seed, 41u);
  EXPECT_EQ(points[2].spec.seed, 42u);
  for (const auto& p : points) EXPECT_EQ(p.offered, 1.0);

  // Distinct seeds must actually change the sampled traffic/runs.
  ParallelSweep sweep(2);
  const auto rows = sweep.run(points);
  EXPECT_FALSE(rows[0].accepted == rows[1].accepted &&
               rows[1].accepted == rows[2].accepted &&
               rows[0].avg_latency == rows[1].avg_latency);
}

TEST(ParallelSweep, FreshExperimentMatchesReuse) {
  // The engine builds one Experiment per point; a caller reusing one
  // Experiment for repeated run_load calls must see the same rows, or
  // the "bit-identical to serial" promise is vacuous.
  const ExperimentSpec spec = small_spec();
  Experiment reused(spec);
  const ResultRow first = reused.run_load(0.7);
  const ResultRow again = reused.run_load(0.7);
  expect_identical(first, again, "reused Experiment must be idempotent");
  const ResultRow fresh = run_sweep_point({spec, 0.7});
  expect_identical(first, fresh, "fresh vs reused Experiment");
}

TEST(ParallelSweep, EmptyPointListIsFine) {
  ParallelSweep sweep(2);
  EXPECT_TRUE(sweep.run({}).empty());
}

TEST(ParallelSweep, OnResultExceptionDrainsAndPropagates) {
  // A throwing on_result must reach the caller only after the pool has
  // drained (in-flight workers reference run()'s locals), and must leave
  // the sweep reusable.
  const auto points =
      ParallelSweep::expand_loads(small_spec(), {0.3, 0.6, 0.9, 1.0});
  ParallelSweep sweep(4);
  EXPECT_THROW(sweep.run(points,
                         [](std::size_t i, const ResultRow&) {
                           if (i == 1) throw std::runtime_error("boom");
                         }),
               std::runtime_error);
  const auto rows = sweep.run(points);  // same pool, still functional
  ASSERT_EQ(rows.size(), points.size());
  for (const ResultRow& r : rows) EXPECT_GT(r.packets, 0);
}

// Faulted specs exercise table rebuilds and the escape path in parallel.
TEST(ParallelSweep, FaultedSpecsMatchSerial) {
  ExperimentSpec spec = small_spec();
  spec.fault_links = {0, 3, 11};
  const std::vector<double> loads = {0.6, 1.0};

  std::vector<ResultRow> serial;
  for (double l : loads) {
    Experiment e(spec);
    serial.push_back(e.run_load(l));
  }
  ParallelSweep sweep(8);
  const auto par = sweep.run(ParallelSweep::expand_loads(spec, loads));
  ASSERT_EQ(par.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    expect_identical(serial[i], par[i], "faulted serial vs parallel");
}

} // namespace
} // namespace hxsp
