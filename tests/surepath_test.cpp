/// \file surepath_test.cpp
/// SurePath mechanism tests (paper §3): CRout/CEsc candidate structure,
/// the no-return rule, forced hops under faults, and end-to-end
/// deliverability of every pair under heavy fault loads.

#include <gtest/gtest.h>

#include <set>

#include "core/surepath.hpp"
#include "routing/omnidimensional.hpp"
#include "routing/polarized.hpp"
#include "test_util.hpp"
#include "topology/faults.hpp"

namespace hxsp {
namespace {

using testutil::make_net;
using testutil::make_packet;
using testutil::TestNet;

// Match the factory's shipped configurations (see routing/factory.cpp).
std::unique_ptr<SurePathMechanism> omnisp() {
  return std::make_unique<SurePathMechanism>(
      std::make_unique<OmnidimensionalAlgorithm>(), "OmniSP",
      CRoutVcPolicy::Free);
}

std::unique_ptr<SurePathMechanism> polsp() {
  return std::make_unique<SurePathMechanism>(
      std::make_unique<PolarizedAlgorithm>(), "PolSP", CRoutVcPolicy::Rung);
}

TEST(SurePath, RoutingCandidatesOnAllCRoutVcs) {
  auto t = make_net(2, 4, /*num_vcs=*/4);
  auto mech = omnisp();
  Packet p = make_packet(t, t.hx->switch_at({0, 0}), t.hx->switch_at({2, 0}));
  std::vector<Candidate> out;
  RouteScratch scratch;
  mech->candidates(t.ctx, p, p.src_switch, scratch, out);
  std::set<Vc> rout_vcs, esc_vcs;
  for (const auto& c : out) {
    if (c.escape)
      esc_vcs.insert(c.vc);
    else
      rout_vcs.insert(c.vc);
  }
  // CRout = VCs 0..2, CEsc = VC 3 with 4 VCs.
  EXPECT_EQ(rout_vcs, (std::set<Vc>{0, 1, 2}));
  EXPECT_EQ(esc_vcs, (std::set<Vc>{3}));
}

TEST(SurePath, EscapeCandidatesAlwaysPresent) {
  auto t = make_net(2, 4);
  auto mech = polsp();
  std::vector<Candidate> out;
  RouteScratch scratch;
  for (SwitchId a = 0; a < t.hx->num_switches(); ++a)
    for (SwitchId b = 0; b < t.hx->num_switches(); ++b) {
      if (a == b) continue;
      Packet p = make_packet(t, a, b);
      out.clear();
      mech->candidates(t.ctx, p, a, scratch, out);
      bool has_escape = false;
      for (const auto& c : out) has_escape |= c.escape;
      EXPECT_TRUE(has_escape) << a << "->" << b;
    }
}

TEST(SurePath, NoReturnFromEscape) {
  auto t = make_net(2, 4);
  auto mech = omnisp();
  Packet p = make_packet(t, t.hx->switch_at({0, 0}), t.hx->switch_at({2, 2}));
  p.in_escape = true;
  std::vector<Candidate> out;
  RouteScratch scratch;
  mech->candidates(t.ctx, p, p.src_switch, scratch, out);
  ASSERT_FALSE(out.empty());
  for (const auto& c : out) {
    EXPECT_TRUE(c.escape);
    EXPECT_EQ(c.vc, t.ctx.num_vcs - 1);
  }
}

TEST(SurePath, CommitEntersEscapeAndSetsPhase) {
  auto t = make_net(2, 4);
  auto mech = omnisp();
  Packet p = make_packet(t, 0, 5);
  const Candidate esc{0, 3, 112, true, false};
  mech->commit_hop(t.ctx, p, 0, esc);
  EXPECT_TRUE(p.in_escape);
  EXPECT_FALSE(p.escape_gone_down);
  EXPECT_EQ(p.hops, 1);
  const Candidate down{1, 3, 96, true, true};
  mech->commit_hop(t.ctx, p, 1, down);
  EXPECT_TRUE(p.escape_gone_down);
}

TEST(SurePath, CommitRoutingHopCountsDeroutes) {
  auto t = make_net(2, 4);
  auto mech = omnisp();
  const SwitchId src = t.hx->switch_at({0, 0});
  Packet p = make_packet(t, src, t.hx->switch_at({2, 0}));
  // Deroute to (1,0) on a CRout vc.
  const Port q = t.hx->port_towards(src, 0, 1);
  mech->commit_hop(t.ctx, p, src, {q, 0, 64, false, false});
  EXPECT_EQ(p.deroutes, 1);
  EXPECT_FALSE(p.in_escape);
}

TEST(SurePath, InjectionVcsFollowPolicy) {
  auto t = make_net(2, 4, 4);
  Packet p = make_packet(t, 0, 5);
  std::vector<Vc> vcs;
  // Free policy (OmniSP default): any CRout VC.
  omnisp()->injection_vcs(t.ctx, p, vcs);
  EXPECT_EQ(vcs, (std::vector<Vc>{0, 1, 2}));
  // Rung policy (PolSP default): the first ladder rung only.
  vcs.clear();
  polsp()->injection_vcs(t.ctx, p, vcs);
  EXPECT_EQ(vcs, (std::vector<Vc>{0}));
}

TEST(SurePath, RungPolicyFollowsHopCount) {
  auto t = make_net(2, 4, 4);
  auto mech = polsp(); // Rung policy
  Packet p = make_packet(t, t.hx->switch_at({0, 0}), t.hx->switch_at({2, 2}));
  p.hops = 1;
  std::vector<Candidate> out;
  RouteScratch scratch;
  mech->candidates(t.ctx, p, t.hx->switch_at({2, 0}), scratch, out);
  ASSERT_FALSE(out.empty());
  for (const auto& c : out)
    if (!c.escape) { EXPECT_EQ(c.vc, 1); }
  // Rung saturates at the top CRout VC.
  p.hops = 9;
  out.clear();
  mech->candidates(t.ctx, p, t.hx->switch_at({2, 0}), scratch, out);
  for (const auto& c : out)
    if (!c.escape) { EXPECT_EQ(c.vc, 2); }
}

TEST(SurePath, AutoPolicyResolvesByLadderDepth) {
  // Auto = Rung when the CRout VCs can ladder a 2n-1 route, Free below.
  SurePathMechanism mech(std::make_unique<PolarizedAlgorithm>(), "SP",
                         CRoutVcPolicy::Auto);
  // 2D, 4 VCs: 3 CRout VCs >= 2*2-1 -> Rung.
  auto t2 = make_net(2, 4, /*num_vcs=*/4);
  EXPECT_EQ(mech.resolved_policy(t2.ctx), CRoutVcPolicy::Rung);
  // 3D, 4 VCs: 3 CRout VCs < 2*3-1 -> Free.
  auto t3 = make_net(3, 3, /*num_vcs=*/4);
  EXPECT_EQ(mech.resolved_policy(t3.ctx), CRoutVcPolicy::Free);
  // 3D, 6 VCs: 5 CRout VCs >= 5 -> Rung.
  t3.ctx.num_vcs = 6;
  EXPECT_EQ(mech.resolved_policy(t3.ctx), CRoutVcPolicy::Rung);
  // Non-Auto policies resolve to themselves.
  SurePathMechanism free_mech(std::make_unique<OmnidimensionalAlgorithm>(),
                              "SP", CRoutVcPolicy::Free);
  EXPECT_EQ(free_mech.resolved_policy(t3.ctx), CRoutVcPolicy::Free);
}

TEST(SurePath, MonotonePolicyRespectsCurrentVc) {
  auto t = make_net(2, 4, 4);
  SurePathMechanism mech(std::make_unique<OmnidimensionalAlgorithm>(), "SP",
                         CRoutVcPolicy::Monotone);
  Packet p = make_packet(t, t.hx->switch_at({0, 0}), t.hx->switch_at({2, 2}));
  p.cur_vc = 1;
  std::vector<Candidate> out;
  RouteScratch scratch;
  mech.candidates(t.ctx, p, p.src_switch, scratch, out);
  ASSERT_FALSE(out.empty());
  for (const auto& c : out)
    if (!c.escape) { EXPECT_GE(c.vc, 1); }
}

TEST(SurePath, ForcedHopWhenBaseRoutingDead) {
  // Kill every unaligned-dimension link at the source so Omnidimensional
  // has no candidate: only escape candidates remain (a forced hop, §3).
  auto t = make_net(2, 4);
  const SwitchId src = t.hx->switch_at({1, 1});
  const SwitchId dst = t.hx->switch_at({1, 3}); // unaligned in dim 1 only
  for (int a = 0; a < 4; ++a) {
    if (a == 1) continue;
    t.hx->graph().fail_link(
        t.hx->graph().port(src, t.hx->port_towards(src, 1, a)).link);
  }
  t.rebuild();
  auto mech = omnisp();
  Packet p = make_packet(t, src, dst);
  std::vector<Candidate> out;
  RouteScratch scratch;
  mech->candidates(t.ctx, p, src, scratch, out);
  ASSERT_FALSE(out.empty());
  for (const auto& c : out) EXPECT_TRUE(c.escape);
}

/// Greedy SurePath walk mimicking the router: prefers the lowest penalty,
/// updating escape state through commit_hop.
int surepath_walk(const TestNet& t, RoutingMechanism& mech, SwitchId src,
                  SwitchId dst, int max_hops) {
  Packet p = testutil::make_packet(t, src, dst);
  Rng rng(17);
  mech.on_inject(t.ctx, p, rng);
  SwitchId c = src;
  mech.on_arrival(t.ctx, p, c);
  std::vector<Candidate> out;
  RouteScratch scratch;
  int hops = 0;
  while (c != dst) {
    if (hops > max_hops) return -1;
    out.clear();
    mech.candidates(t.ctx, p, c, scratch, out);
    if (out.empty()) return -1;
    const Candidate* best = &out.front();
    for (const auto& cc : out)
      if (cc.penalty < best->penalty) best = &cc;
    mech.commit_hop(t.ctx, p, c, *best);
    c = t.ctx.graph->port(c, best->port).neighbor;
    mech.on_arrival(t.ctx, p, c);
    ++hops;
  }
  return hops;
}

TEST(SurePath, AllPairsDeliverableFaultFree) {
  auto t = make_net(2, 4);
  auto mo = omnisp();
  auto mp = polsp();
  for (SwitchId a = 0; a < t.hx->num_switches(); ++a)
    for (SwitchId b = 0; b < t.hx->num_switches(); ++b) {
      if (a == b) continue;
      EXPECT_GE(surepath_walk(t, *mo, a, b, 16), 0);
      EXPECT_GE(surepath_walk(t, *mp, a, b, 16), 0);
    }
}

/// Property sweep: SurePath delivers every pair under growing random fault
/// loads (the paper's central fault-tolerance claim).
struct SpSweep {
  int seed;
  int faults;
  bool strict;
  const char* base; // "omni" or "pol"
};

class SurePathFaultSweep : public ::testing::TestWithParam<SpSweep> {};

TEST_P(SurePathFaultSweep, AllPairsDeliverableUnderFaults) {
  const auto param = GetParam();
  auto t = make_net(2, 5);
  Rng rng(static_cast<std::uint64_t>(param.seed));
  apply_faults(t.hx->graph(), random_fault_links(t.hx->graph(), param.faults,
                                                 rng, /*keep_connected=*/true));
  const SwitchId root = static_cast<SwitchId>(
      rng.next_below(static_cast<std::uint64_t>(t.hx->num_switches())));
  t.rebuild(root, param.strict);
  std::unique_ptr<SurePathMechanism> mech =
      std::string(param.base) == "omni" ? omnisp() : polsp();
  const int bound = 4 * t.hx->num_switches();
  for (SwitchId a = 0; a < t.hx->num_switches(); ++a)
    for (SwitchId b = 0; b < t.hx->num_switches(); ++b)
      if (a != b) {
        EXPECT_GE(surepath_walk(t, *mech, a, b, bound), 0)
            << param.base << " " << a << "->" << b;
      }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsModesBases, SurePathFaultSweep,
    ::testing::Values(SpSweep{1, 25, false, "omni"}, SpSweep{2, 25, false, "pol"},
                      SpSweep{3, 40, false, "omni"}, SpSweep{4, 40, false, "pol"},
                      SpSweep{5, 40, true, "omni"}, SpSweep{6, 40, true, "pol"},
                      SpSweep{7, 55, false, "pol"}, SpSweep{8, 55, true, "omni"}));

TEST(SurePath, WalkSurvivesRowFaultWithRootInside) {
  auto t = make_net(2, 4);
  const ShapeFault sf = row_fault(*t.hx, 0, {0, 2});
  apply_faults(t.hx->graph(), sf.links);
  t.rebuild(sf.suggested_root);
  auto mech = polsp();
  for (SwitchId a = 0; a < t.hx->num_switches(); ++a)
    for (SwitchId b = 0; b < t.hx->num_switches(); ++b)
      if (a != b) { EXPECT_GE(surepath_walk(t, *mech, a, b, 64), 0); }
}

TEST(SurePath, RequiresEscapeInContext) {
  auto t = make_net(2, 4);
  t.ctx.escape = nullptr;
  auto mech = omnisp();
  Packet p = make_packet(t, 0, 5);
  std::vector<Candidate> out;
  RouteScratch scratch;
  EXPECT_DEATH(mech->candidates(t.ctx, p, 0, scratch, out), "escape");
}

} // namespace
} // namespace hxsp
