/// \file robustness_test.cpp
/// Edge-case and robustness coverage: mixed-side HyperX, every-root escape
/// sweeps, Valiant under faults, degenerate completion runs, logging.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "util/log.hpp"

namespace hxsp {
namespace {

TEST(Robustness, MixedSideHyperXSimulates) {
  ExperimentSpec s;
  s.sides = {4, 6}; // rectangular 2D HyperX
  s.servers_per_switch = 3;
  s.mechanism = "polsp";
  s.pattern = "uniform";
  s.sim.num_vcs = 4;
  s.warmup = 800;
  s.measure = 1600;
  Experiment e(s);
  EXPECT_EQ(e.hyperx().num_switches(), 24);
  const ResultRow r = e.run_load(0.5);
  EXPECT_GT(r.accepted, 0.35);
}

TEST(Robustness, MixedSideOmniDelivery) {
  ExperimentSpec s;
  s.sides = {3, 5};
  s.servers_per_switch = 1;
  s.mechanism = "omnisp";
  s.sim.num_vcs = 4;
  Experiment e(s);
  for (SwitchId a = 0; a < e.hyperx().num_switches(); ++a)
    for (SwitchId b = 0; b < e.hyperx().num_switches(); ++b)
      if (a != b) { EXPECT_GE(e.walk_route(a, b, 60), 0); }
}

TEST(Robustness, EveryEscapeRootDelivers) {
  // The escape must be live no matter which switch roots it.
  ExperimentSpec s;
  s.sides = {3, 3};
  s.servers_per_switch = 1;
  s.mechanism = "polsp";
  s.sim.num_vcs = 4;
  for (SwitchId root = 0; root < 9; ++root) {
    s.escape_root = root;
    Experiment e(s);
    for (SwitchId a = 0; a < 9; ++a)
      for (SwitchId b = 0; b < 9; ++b)
        if (a != b) {
          EXPECT_GE(e.walk_route(a, b, 40), 0) << "root " << root;
        }
  }
}

TEST(Robustness, ValiantReroutesUnderFaults) {
  // Valiant's phases are table-minimal, so it adapts to faults as long as
  // the ladder is deep enough for the stretched phases.
  ExperimentSpec s;
  s.sides = {4, 4};
  s.servers_per_switch = 1;
  s.mechanism = "valiant";
  s.sim.num_vcs = 8; // headroom for fault-stretched routes
  HyperX scratch(s.sides, 1);
  Rng rng(3);
  s.fault_links = random_fault_links(scratch.graph(), 8, rng, true);
  Experiment e(s);
  int delivered = 0, total = 0;
  for (SwitchId a = 0; a < 16; ++a)
    for (SwitchId b = 0; b < 16; ++b) {
      if (a == b) continue;
      ++total;
      delivered += e.walk_route(a, b, 64) >= 0;
    }
  EXPECT_EQ(delivered, total);
}

TEST(Robustness, MinimalTwoStepLadderOn3D) {
  ExperimentSpec s;
  s.sides = {3, 3, 3};
  s.servers_per_switch = 2;
  s.mechanism = "minimal";
  s.sim.num_vcs = 6; // 2 VCs per step x diameter 3
  s.warmup = 600;
  s.measure = 1500;
  Experiment e(s);
  const ResultRow r = e.run_load(0.6);
  EXPECT_GT(r.accepted, 0.5);
}

TEST(Robustness, CompletionWithZeroPackets) {
  ExperimentSpec s;
  s.sides = {2, 2};
  s.servers_per_switch = 1;
  s.mechanism = "minimal";
  s.sim.num_vcs = 2;
  Experiment e(s);
  const CompletionResult res = e.run_completion(0, 100, 1000);
  EXPECT_TRUE(res.drained);
  EXPECT_LE(res.completion_time, 1);
}

TEST(Robustness, RepeatedRunsIndependent) {
  // run_load spins up a fresh network: results must not drift run-to-run.
  ExperimentSpec s;
  s.sides = {3, 3};
  s.servers_per_switch = 2;
  s.mechanism = "omnisp";
  s.warmup = 500;
  s.measure = 1000;
  s.sim.num_vcs = 4;
  Experiment e(s);
  const double first = e.run_load(0.5).accepted;
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(e.run_load(0.5).accepted, first);
}

TEST(Robustness, LogLevelRoundTrip) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  logf(LogLevel::Debug, "debug message %d", 42); // must not crash
  set_log_level(LogLevel::Error);
  logf(LogLevel::Info, "suppressed");
  set_log_level(prev);
}

TEST(Robustness, HotspotTrafficDoesNotStall) {
  // Hotspot is inadmissible: the network saturates around the spot, but
  // the simulation must keep making progress (no watchdog abort).
  ExperimentSpec s;
  s.sides = {4, 4};
  s.servers_per_switch = 2;
  s.mechanism = "polsp";
  s.pattern = "hotspot";
  s.sim.num_vcs = 4;
  s.warmup = 800;
  s.measure = 2000;
  Experiment e(s);
  const ResultRow r = e.run_load(0.5);
  EXPECT_GT(r.accepted, 0.05);
  EXPECT_LT(r.jain, 1.0);
}

TEST(Robustness, FourDimensionalHyperX) {
  // n = 4 is beyond the paper's practical range but must still work.
  ExperimentSpec s;
  s.sides = {2, 2, 2, 2};
  s.servers_per_switch = 1;
  s.mechanism = "omnisp";
  s.sim.num_vcs = 4;
  s.warmup = 500;
  s.measure = 1000;
  Experiment e(s);
  EXPECT_EQ(e.hyperx().num_switches(), 16);
  EXPECT_EQ(e.distances().diameter(), 4);
  const ResultRow r = e.run_load(0.4);
  EXPECT_GT(r.accepted, 0.25);
}

} // namespace
} // namespace hxsp
