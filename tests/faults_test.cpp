/// \file faults_test.cpp
/// Fault-model tests: exact link counts of every shape the paper uses
/// (Fig 7: Row 120 / Subplane 100 / Cross 110 in 2D; §6: Row 28 /
/// Subcube 81 / Star 63 in 3D), root degrees, prefix property of random
/// sequences, and connectivity preservation.

#include <gtest/gtest.h>

#include <set>

#include "topology/distance.hpp"
#include "topology/faults.hpp"

namespace hxsp {
namespace {

TEST(RandomFaults, SequenceIsPermutationOfLinks) {
  const HyperX hx = HyperX::regular(2, 4, 1);
  Rng rng(1);
  const auto seq = random_fault_sequence(hx.graph(), rng);
  EXPECT_EQ(seq.size(), static_cast<std::size_t>(hx.graph().num_links()));
  std::set<LinkId> s(seq.begin(), seq.end());
  EXPECT_EQ(s.size(), seq.size());
}

TEST(RandomFaults, SameSeedSameSequence) {
  const HyperX hx = HyperX::regular(2, 4, 1);
  Rng a(9), b(9);
  EXPECT_EQ(random_fault_sequence(hx.graph(), a),
            random_fault_sequence(hx.graph(), b));
}

TEST(RandomFaults, KeepConnectedNeverDisconnects) {
  const HyperX hx = HyperX::regular(2, 4, 1);
  Rng rng(3);
  // 4x4 HyperX has 48 links; removing 30 at random would often disconnect.
  const auto faults = random_fault_links(hx.graph(), 30, rng, true);
  EXPECT_EQ(faults.size(), 30u);
  Graph g = hx.graph();
  apply_faults(g, faults);
  EXPECT_TRUE(g.connected());
}

TEST(RandomFaults, CountZeroIsEmpty) {
  const HyperX hx = HyperX::regular(2, 4, 1);
  Rng rng(4);
  EXPECT_TRUE(random_fault_links(hx.graph(), 0, rng).empty());
}

TEST(ShapeFaults, Row2DPaperCount) {
  const HyperX hx = HyperX::regular(2, 16);
  // A full row of side 16 is a K16: 120 links (paper §6).
  const ShapeFault sf = row_fault(hx, 0, {0, 3});
  EXPECT_EQ(sf.links.size(), 120u);
  EXPECT_EQ(sf.switches.size(), 16u);
  // The suggested root lies in the faulted row.
  EXPECT_EQ(hx.coord(sf.suggested_root, 1), 3);
}

TEST(ShapeFaults, Row3DPaperCount) {
  const HyperX hx = HyperX::regular(3, 8);
  // A K8 row: 28 links (paper §6).
  const ShapeFault sf = row_fault(hx, 1, {2, 0, 5});
  EXPECT_EQ(sf.links.size(), 28u);
  EXPECT_EQ(sf.switches.size(), 8u);
}

TEST(ShapeFaults, Subplane2DPaperCount) {
  const HyperX hx = HyperX::regular(2, 16);
  // 5x5 subplane: K5 x K5 has 100 internal links (paper §6).
  const ShapeFault sf = subcube_fault(hx, {0, 0}, {5, 5});
  EXPECT_EQ(sf.links.size(), 100u);
  EXPECT_EQ(sf.switches.size(), 25u);
}

TEST(ShapeFaults, Subcube3DPaperCount) {
  const HyperX hx = HyperX::regular(3, 8);
  // 3x3x3 subcube: 81 internal links (paper §6).
  const ShapeFault sf = subcube_fault(hx, {1, 1, 1}, {3, 3, 3});
  EXPECT_EQ(sf.links.size(), 81u);
  EXPECT_EQ(sf.switches.size(), 27u);
}

TEST(ShapeFaults, Cross2DPaperCount) {
  const HyperX hx = HyperX::regular(2, 16);
  // Cross with margin: two 11-switch segments -> 2 * C(11,2) = 110 links,
  // and the center loses 20 of its 30 switch links (2/3, as §6 states).
  const SwitchId center = hx.switch_at({5, 5});
  const ShapeFault sf = star_fault(hx, center, 11);
  EXPECT_EQ(sf.links.size(), 110u);
  EXPECT_EQ(sf.suggested_root, center);
  Graph g = hx.graph();
  apply_faults(g, sf.links);
  EXPECT_EQ(g.alive_degree(center), 30 - 20);
  EXPECT_TRUE(g.connected());
}

TEST(ShapeFaults, Star3DPaperCount) {
  const HyperX hx = HyperX::regular(3, 8);
  // Star: three 7-switch segments -> 3 * C(7,2) = 63 links; the center
  // keeps exactly 3 alive links (paper §6).
  const SwitchId center = hx.switch_at({4, 4, 4});
  const ShapeFault sf = star_fault(hx, center, 7);
  EXPECT_EQ(sf.links.size(), 63u);
  Graph g = hx.graph();
  apply_faults(g, sf.links);
  EXPECT_EQ(g.alive_degree(center), 3);
  EXPECT_TRUE(g.connected());
}

TEST(ShapeFaults, RowKeepsNetworkConnected) {
  const HyperX hx = HyperX::regular(2, 8, 1);
  Graph g = hx.graph();
  apply_faults(g, row_fault(hx, 0, {0, 0}).links);
  EXPECT_TRUE(g.connected());
  // Switches of the row lose their 7 row links but keep column links.
  EXPECT_EQ(g.alive_degree(hx.switch_at({0, 0})), 7);
}

TEST(ShapeFaults, SubcubeDisjointFromOutsideLinks) {
  const HyperX hx = HyperX::regular(2, 8, 1);
  const ShapeFault sf = subcube_fault(hx, {2, 2}, {3, 3});
  std::set<SwitchId> members(sf.switches.begin(), sf.switches.end());
  for (LinkId l : sf.links) {
    const auto& e = hx.graph().link(l);
    EXPECT_TRUE(members.count(e.a));
    EXPECT_TRUE(members.count(e.b));
  }
}

TEST(ShapeFaults, DiameterGrowsUnderRowFault) {
  const HyperX hx = HyperX::regular(2, 8, 1);
  Graph g = hx.graph();
  apply_faults(g, row_fault(hx, 0, {0, 0}).links);
  const DistanceTable d(g);
  // Two switches in the broken row now need a detour: distance 2, so the
  // diameter rises from 2 to at least 3.
  EXPECT_GE(d.diameter(), 3);
}

/// Property sweep: growing random fault prefixes never decrease the
/// diameter and eventually disconnect the network (paper Fig 1 behaviour).
class FaultSequenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(FaultSequenceProperty, DiameterMonotoneUntilDisconnect) {
  const HyperX hx = HyperX::regular(3, 4, 1);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto seq = random_fault_sequence(hx.graph(), rng);
  Graph g = hx.graph();
  int last_diameter = DistanceTable(g).diameter();
  EXPECT_EQ(last_diameter, 3);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    g.fail_link(seq[i]);
    if (i % 16 != 0) continue; // sample every 16 faults
    if (!g.connected()) {
      SUCCEED();
      return;
    }
    const int diam = DistanceTable(g).diameter();
    EXPECT_GE(diam, last_diameter);
    last_diameter = diam;
  }
  // Removing all links certainly disconnects: should not reach here with
  // the graph still connected.
  EXPECT_FALSE(g.connected());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSequenceProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace hxsp
