/// \file util_test.cpp
/// Unit tests for the util module: RNG determinism and statistics, CLI
/// option parsing, table formatting.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace hxsp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r(123);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[r.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(11);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, PermutationIsBijection) {
  Rng r(17);
  const auto p = r.permutation(257);
  std::set<std::int32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 256);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng r(19);
  std::vector<int> v{1, 1, 2, 3, 5, 8, 13};
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng base(21);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 4);
}

TEST(Options, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--side=16", "--load=0.5"};
  Options opt(3, argv);
  EXPECT_EQ(opt.get_int("side", 0), 16);
  EXPECT_DOUBLE_EQ(opt.get_double("load", 0), 0.5);
}

TEST(Options, ParsesKeySpaceValue) {
  const char* argv[] = {"prog", "--side", "8", "--name", "polsp"};
  Options opt(5, argv);
  EXPECT_EQ(opt.get_int("side", 0), 8);
  EXPECT_EQ(opt.get("name", ""), "polsp");
}

TEST(Options, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--paper"};
  Options opt(2, argv);
  EXPECT_TRUE(opt.get_bool("paper", false));
  EXPECT_FALSE(opt.get_bool("absent", false));
}

TEST(Options, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=off"};
  Options opt(5, argv);
  EXPECT_TRUE(opt.get_bool("a", false));
  EXPECT_FALSE(opt.get_bool("b", true));
  EXPECT_TRUE(opt.get_bool("c", false));
  EXPECT_FALSE(opt.get_bool("d", true));
}

TEST(Options, DoubleList) {
  const char* argv[] = {"prog", "--loads=0.1,0.5,0.9"};
  Options opt(2, argv);
  const auto v = opt.get_double_list("loads", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.1);
  EXPECT_DOUBLE_EQ(v[2], 0.9);
}

TEST(Options, StringList) {
  const char* argv[] = {"prog", "--mechs=omnisp,polsp"};
  Options opt(2, argv);
  const auto v = opt.get_list("mechs", {});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "omnisp");
  EXPECT_EQ(v[1], "polsp");
}

TEST(Options, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Options opt(1, argv);
  EXPECT_EQ(opt.get_int("x", 42), 42);
  EXPECT_EQ(opt.get("s", "dflt"), "dflt");
  const auto v = opt.get_double_list("loads", {1.0, 2.0});
  EXPECT_EQ(v.size(), 2u);
}

TEST(Options, Positional) {
  const char* argv[] = {"prog", "alpha", "--k=1", "beta"};
  Options opt(4, argv);
  ASSERT_EQ(opt.positional().size(), 2u);
  EXPECT_EQ(opt.positional()[0], "alpha");
  EXPECT_EQ(opt.positional()[1], "beta");
}

TEST(Split, BasicAndEmptyFields) {
  const auto v = split("a,b,,c", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[2], "");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("x").cell(1L);
  t.row().cell("longer").cell(2L);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header row and separator plus two data rows -> 4 lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, FormatsDoubles) {
  EXPECT_EQ(format_double(0.5, 3), "0.500");
  EXPECT_EQ(format_double(1.0 / 3.0, 2), "0.33");
}

TEST(Table, WritesCsvWithEscaping) {
  Table t({"a", "b"});
  t.row().cell("plain").cell("has,comma");
  const std::string path = testing::TempDir() + "/hxsp_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  ASSERT_NE(fgets(buf, sizeof buf, f), nullptr); // header
  ASSERT_NE(fgets(buf, sizeof buf, f), nullptr); // row
  EXPECT_NE(std::string(buf).find("\"has,comma\""), std::string::npos);
  fclose(f);
}

} // namespace
} // namespace hxsp
