/// \file escape_test.cpp
/// Tests of the opportunistic Up/Down escape subnetwork (paper §3.2):
/// link colouring, Up/Down distance identities, candidate legality,
/// liveness (a strictly-improving candidate always exists) across random
/// topologies and fault sets, in both memoryless and strict-phase modes.

#include <gtest/gtest.h>

#include "core/escape_updown.hpp"
#include "test_util.hpp"
#include "topology/builders.hpp"
#include "topology/faults.hpp"

namespace hxsp {
namespace {

using testutil::make_net;
using testutil::TestNet;

TEST(Escape, LevelsAreBfsDistancesToRoot) {
  auto t = make_net(2, 4);
  const auto d = t.hx->graph().bfs(0);
  for (SwitchId s = 0; s < t.hx->num_switches(); ++s)
    EXPECT_EQ(t.escape->level(s), d[static_cast<std::size_t>(s)]);
}

TEST(Escape, BlackRedCountsOn4x4HyperX) {
  // Root (0,0) in a 4x4 HyperX: 6 black to level 1, 18 black between
  // levels 1 and 2; 6 red inside level 1, 18 red inside level 2.
  auto t = make_net(2, 4);
  EXPECT_EQ(t.escape->num_black_links(), 24);
  EXPECT_EQ(t.escape->num_red_links(), 24);
  EXPECT_EQ(t.escape->num_black_links() + t.escape->num_red_links(),
            t.hx->graph().num_links());
}

TEST(Escape, BlackLinksSpanAdjacentLevels) {
  auto t = make_net(3, 3);
  const Graph& g = t.hx->graph();
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const auto& e = g.link(l);
    const int la = t.escape->level(e.a);
    const int lb = t.escape->level(e.b);
    if (t.escape->is_black(l))
      EXPECT_EQ(std::abs(la - lb), 1);
    else
      EXPECT_EQ(la, lb);
  }
}

TEST(Escape, UpDistanceBasics) {
  auto t = make_net(2, 4);
  for (SwitchId s = 0; s < t.hx->num_switches(); ++s) {
    EXPECT_EQ(t.escape->up_distance(s, s), 0);
    // Every switch can ascend to the root in level(s) steps.
    EXPECT_EQ(t.escape->up_distance(s, 0), t.escape->level(s));
  }
}

TEST(Escape, UpDownDistanceIdentities) {
  auto t = make_net(2, 4);
  const SwitchId n = t.hx->num_switches();
  for (SwitchId a = 0; a < n; ++a) {
    EXPECT_EQ(t.escape->updown_distance(a, a), 0);
    EXPECT_EQ(t.escape->updown_distance(a, 0), t.escape->level(a));
    for (SwitchId b = 0; b < n; ++b) {
      const int ud = t.escape->updown_distance(a, b);
      // Symmetric.
      EXPECT_EQ(ud, t.escape->updown_distance(b, a));
      // At least the graph distance; at most via the root.
      EXPECT_GE(ud, t.dist->at(a, b));
      EXPECT_LE(ud, t.escape->level(a) + t.escape->level(b));
    }
  }
}

TEST(Escape, PaperExampleUpDownPaths) {
  // Figure 2 discussion: in a 4x4 HyperX rooted at (0,0), switches (1,0)
  // and (2,0) are at Up/Down distance 2 (1 up + 1 down).
  auto t = make_net(2, 4);
  const SwitchId a = t.hx->switch_at({1, 0});
  const SwitchId b = t.hx->switch_at({2, 0});
  EXPECT_EQ(t.escape->updown_distance(a, b), 2);
}

TEST(Escape, CandidatePenaltiesMatchPaper) {
  auto t = make_net(2, 4);
  // From (1,1) to (1,3): the red row link reduces udist(=2) to 0, so it is
  // a shortcut with reduction 2 -> penalty 64; black up links to (0,1) and
  // (1,0) reduce udist by 1 -> penalty 112.
  const SwitchId c = t.hx->switch_at({1, 1});
  const SwitchId dst = t.hx->switch_at({1, 3});
  std::vector<EscapeCand> cand;
  t.escape->candidates(c, dst, false, cand);
  ASSERT_FALSE(cand.empty());
  bool saw_red2 = false, saw_up = false;
  for (const auto& ec : cand) {
    const SwitchId nbr = t.hx->graph().port(c, ec.port).neighbor;
    if (nbr == dst) {
      EXPECT_EQ(ec.penalty, 64);
      saw_red2 = true;
    }
    if (t.escape->level(nbr) == 1 && ec.penalty == 112) saw_up = true;
  }
  EXPECT_TRUE(saw_red2);
  EXPECT_TRUE(saw_up);
}

TEST(Escape, EveryCandidateStrictlyReducesUpDownDistance) {
  auto t = make_net(3, 3);
  std::vector<EscapeCand> cand;
  for (SwitchId c = 0; c < t.hx->num_switches(); ++c) {
    for (SwitchId dst = 0; dst < t.hx->num_switches(); ++dst) {
      if (c == dst) continue;
      cand.clear();
      t.escape->candidates(c, dst, false, cand);
      for (const auto& ec : cand) {
        const SwitchId nbr = t.hx->graph().port(c, ec.port).neighbor;
        EXPECT_LT(t.escape->updown_distance(nbr, dst),
                  t.escape->updown_distance(c, dst));
      }
    }
  }
}

TEST(Escape, NoShortcutsModeUsesOnlyBlackLinks) {
  auto t = make_net(2, 4);
  t.rebuild(/*root=*/0, /*strict=*/false, /*shortcuts=*/false);
  std::vector<EscapeCand> cand;
  for (SwitchId c = 0; c < t.hx->num_switches(); ++c) {
    for (SwitchId dst = 0; dst < t.hx->num_switches(); ++dst) {
      if (c == dst) continue;
      cand.clear();
      t.escape->candidates(c, dst, false, cand);
      EXPECT_FALSE(cand.empty());
      for (const auto& ec : cand)
        EXPECT_TRUE(t.escape->is_black(t.hx->graph().port(c, ec.port).link));
    }
  }
}

/// Walks the escape greedily (min penalty) from src to dst, returning hops
/// or -1 on failure; maintains the strict-phase bit like the router does.
int escape_walk(const TestNet& t, SwitchId src, SwitchId dst, int max_hops) {
  SwitchId c = src;
  bool gone_down = false;
  std::vector<EscapeCand> cand;
  int hops = 0;
  while (c != dst) {
    if (hops > max_hops) return -1;
    cand.clear();
    t.escape->candidates(c, dst, gone_down, cand);
    if (cand.empty()) return -1;
    const EscapeCand* best = &cand.front();
    for (const auto& ec : cand)
      if (ec.penalty < best->penalty) best = &ec;
    if (best->down_black) gone_down = true;
    c = t.hx->graph().port(c, best->port).neighbor;
    ++hops;
  }
  return hops;
}

TEST(Escape, LivenessAllPairsFaultFree) {
  auto t = make_net(2, 4);
  const int bound = 2 * 3; // level sums bound udist
  for (SwitchId a = 0; a < t.hx->num_switches(); ++a)
    for (SwitchId b = 0; b < t.hx->num_switches(); ++b)
      if (a != b) { EXPECT_GE(escape_walk(t, a, b, bound + 1), 0); }
}

TEST(Escape, WalkLengthBoundedByUpDownDistance) {
  auto t = make_net(3, 3);
  for (SwitchId a = 0; a < t.hx->num_switches(); ++a)
    for (SwitchId b = 0; b < t.hx->num_switches(); ++b) {
      if (a == b) continue;
      const int hops = escape_walk(t, a, b, 64);
      ASSERT_GE(hops, 0);
      EXPECT_LE(hops, t.escape->updown_distance(a, b));
    }
}

/// Property sweep: liveness under random faults for both escape modes and
/// several seeds/roots (the heart of SurePath's fault-tolerance claim).
struct EscapeSweepParam {
  int seed;
  int faults;
  bool strict;
};

class EscapeLivenessSweep : public ::testing::TestWithParam<EscapeSweepParam> {};

TEST_P(EscapeLivenessSweep, AllPairsDeliverableUnderFaults) {
  const auto param = GetParam();
  auto t = make_net(2, 5);
  Rng rng(static_cast<std::uint64_t>(param.seed));
  const auto faults =
      random_fault_links(t.hx->graph(), param.faults, rng, /*keep_connected=*/true);
  apply_faults(t.hx->graph(), faults);
  const SwitchId root =
      static_cast<SwitchId>(rng.next_below(
          static_cast<std::uint64_t>(t.hx->num_switches())));
  t.rebuild(root, param.strict);
  for (SwitchId a = 0; a < t.hx->num_switches(); ++a)
    for (SwitchId b = 0; b < t.hx->num_switches(); ++b)
      if (a != b) {
        EXPECT_GE(escape_walk(t, a, b, 2 * t.hx->num_switches()), 0)
            << "pair " << a << "->" << b << " seed " << param.seed;
      }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, EscapeLivenessSweep,
    ::testing::Values(EscapeSweepParam{1, 20, false}, EscapeSweepParam{2, 20, false},
                      EscapeSweepParam{3, 35, false}, EscapeSweepParam{4, 35, true},
                      EscapeSweepParam{5, 20, true}, EscapeSweepParam{6, 50, false},
                      EscapeSweepParam{7, 50, true}, EscapeSweepParam{8, 10, false}));

TEST(Escape, WorksOnGenericTopologies) {
  // SurePath's escape is defined without HyperX knowledge (paper §7):
  // verify liveness on a random regular graph and a torus.
  Rng rng(13);
  Graph g = make_random_regular(24, 4, rng);
  EscapeUpDown::Config cfg;
  cfg.root = 5;
  EscapeUpDown esc(g, cfg);
  std::vector<EscapeCand> cand;
  for (SwitchId a = 0; a < g.num_switches(); ++a) {
    for (SwitchId b = 0; b < g.num_switches(); ++b) {
      if (a == b) continue;
      SwitchId c = a;
      int hops = 0;
      while (c != b && hops <= 64) {
        cand.clear();
        esc.candidates(c, b, false, cand);
        ASSERT_FALSE(cand.empty());
        const EscapeCand* best = &cand.front();
        for (const auto& ec : cand)
          if (ec.penalty < best->penalty) best = &ec;
        c = g.port(c, best->port).neighbor;
        ++hops;
      }
      EXPECT_EQ(c, b);
    }
  }
}

TEST(Escape, StarFaultRootNearlyDisconnected) {
  // The paper's §6 extreme case: root inside a Star fault with 3 alive
  // links must still provide full escape liveness.
  auto t = make_net(3, 4);
  const SwitchId center = t.hx->switch_at({2, 2, 2});
  const ShapeFault sf = star_fault(*t.hx, center, 3);
  apply_faults(t.hx->graph(), sf.links);
  t.rebuild(center);
  EXPECT_EQ(t.hx->graph().alive_degree(center), 3);
  for (SwitchId b = 0; b < t.hx->num_switches(); ++b)
    if (b != center) {
      EXPECT_GE(escape_walk(t, center, b, 64), 0);
      EXPECT_GE(escape_walk(t, b, center, 64), 0);
    }
}

TEST(Escape, RequiresConnectedGraph) {
  Graph g = make_from_edges(4, {{0, 1}, {2, 3}});
  EscapeUpDown::Config cfg;
  EXPECT_DEATH(EscapeUpDown(g, cfg), "connected");
}

} // namespace
} // namespace hxsp
