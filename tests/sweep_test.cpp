/// \file sweep_test.cpp
/// Parameterized property sweeps across mechanisms, topology shapes and
/// seeds: the "for all" guarantees behind the paper's claims.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "topology/builders.hpp"

namespace hxsp {
namespace {

// ---------------------------------------------------------------------------
// Every mechanism delivers every switch pair on a fault-free HyperX.
// ---------------------------------------------------------------------------

class MechanismDelivery : public ::testing::TestWithParam<const char*> {};

TEST_P(MechanismDelivery, AllPairsDeliverableFaultFree2D) {
  ExperimentSpec s;
  s.sides = {4, 4};
  s.servers_per_switch = 2;
  s.mechanism = GetParam();
  s.sim.num_vcs = 4;
  Experiment e(s);
  const int bound = 4 * e.hyperx().num_switches();
  for (SwitchId a = 0; a < e.hyperx().num_switches(); ++a)
    for (SwitchId b = 0; b < e.hyperx().num_switches(); ++b) {
      if (a == b) continue;
      EXPECT_GE(e.walk_route(a, b, bound), 0)
          << GetParam() << ": " << a << "->" << b;
    }
}

TEST_P(MechanismDelivery, AllPairsDeliverableFaultFree3D) {
  ExperimentSpec s;
  s.sides = {3, 3, 3};
  s.servers_per_switch = 1;
  s.mechanism = GetParam();
  s.sim.num_vcs = 6;
  Experiment e(s);
  const int bound = 4 * e.hyperx().num_switches();
  for (SwitchId a = 0; a < e.hyperx().num_switches(); ++a)
    for (SwitchId b = 0; b < e.hyperx().num_switches(); ++b) {
      if (a == b) continue;
      EXPECT_GE(e.walk_route(a, b, bound), 0)
          << GetParam() << ": " << a << "->" << b;
    }
}

TEST_P(MechanismDelivery, ShortSimulationDeliversTraffic) {
  ExperimentSpec s;
  s.sides = {4, 4};
  s.servers_per_switch = 2;
  s.mechanism = GetParam();
  s.pattern = "uniform";
  s.sim.num_vcs = 4;
  s.warmup = 500;
  s.measure = 1500;
  Experiment e(s);
  const ResultRow r = e.run_load(0.3);
  EXPECT_GT(r.accepted, 0.2) << GetParam();
  EXPECT_GT(r.jain, 0.9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, MechanismDelivery,
                         ::testing::Values("minimal", "dor", "valiant",
                                           "omniwar", "polarized", "omnisp",
                                           "polsp"));

// ---------------------------------------------------------------------------
// HyperX structural invariants across shapes.
// ---------------------------------------------------------------------------

struct ShapeParam {
  int dims;
  int side;
};

class HyperXShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(HyperXShapes, StructuralInvariants) {
  const auto [dims, side] = GetParam();
  const HyperX hx = HyperX::regular(dims, side, 1);
  long switches = 1;
  for (int i = 0; i < dims; ++i) switches *= side;
  EXPECT_EQ(hx.num_switches(), switches);
  const int degree = dims * (side - 1);
  for (SwitchId s = 0; s < hx.num_switches(); ++s)
    EXPECT_EQ(hx.graph().degree(s), degree);
  EXPECT_EQ(hx.graph().num_links(), switches * degree / 2);
  const DistanceTable d(hx.graph());
  EXPECT_EQ(d.diameter(), dims);
  EXPECT_TRUE(hx.graph().connected());
}

TEST_P(HyperXShapes, EscapeLivenessFaultFree) {
  const auto [dims, side] = GetParam();
  const HyperX hx = HyperX::regular(dims, side, 1);
  const EscapeUpDown esc(hx.graph(),
                         {.root = hx.num_switches() / 2, .strict_phase = false,
                          .penalties = {}, .use_shortcuts = true});
  std::vector<EscapeCand> cand;
  // Spot-check a diagonal of pairs (full all-pairs is covered elsewhere).
  for (SwitchId a = 0; a < hx.num_switches(); a += 3) {
    for (SwitchId b = 1; b < hx.num_switches(); b += 5) {
      if (a == b) continue;
      SwitchId c = a;
      int guard = 0;
      while (c != b && guard++ <= 4 * dims) {
        cand.clear();
        esc.candidates(c, b, false, cand);
        ASSERT_FALSE(cand.empty());
        c = hx.graph().port(c, cand.front().port).neighbor;
      }
      EXPECT_EQ(c, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, HyperXShapes,
                         ::testing::Values(ShapeParam{1, 4}, ShapeParam{2, 3},
                                           ShapeParam{2, 5}, ShapeParam{3, 3},
                                           ShapeParam{3, 4}, ShapeParam{4, 2}));

// ---------------------------------------------------------------------------
// Pattern admissibility across topologies.
// ---------------------------------------------------------------------------

struct PatternParam {
  const char* pattern;
  int dims;
  int side;
  int sps;
};

class PatternAdmissibility : public ::testing::TestWithParam<PatternParam> {};

TEST_P(PatternAdmissibility, PermutationAndRange) {
  const auto p = GetParam();
  const HyperX hx = HyperX::regular(p.dims, p.side, p.sps);
  Rng seed(3);
  auto traffic = make_traffic(p.pattern, hx, seed);
  Rng rng(4);
  std::vector<int> indeg(static_cast<std::size_t>(hx.num_servers()), 0);
  for (ServerId s = 0; s < hx.num_servers(); ++s) {
    const ServerId d = traffic->destination(s, rng);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, hx.num_servers());
    ++indeg[static_cast<std::size_t>(d)];
  }
  if (traffic->is_permutation()) {
    for (ServerId s = 0; s < hx.num_servers(); ++s)
      EXPECT_EQ(indeg[static_cast<std::size_t>(s)], 1)
          << p.pattern << " server " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, PatternAdmissibility,
    ::testing::Values(PatternParam{"rsp", 2, 4, 4}, PatternParam{"rsp", 3, 4, 2},
                      PatternParam{"dcr", 2, 6, 6}, PatternParam{"dcr", 3, 6, 6},
                      PatternParam{"rpn", 3, 4, 4}, PatternParam{"rpn", 3, 6, 2},
                      PatternParam{"rpn", 2, 4, 4},
                      PatternParam{"transpose", 2, 5, 3},
                      PatternParam{"complement", 3, 5, 2},
                      PatternParam{"shift", 2, 4, 4}));

// ---------------------------------------------------------------------------
// Random-regular builder validity across seeds and parameters.
// ---------------------------------------------------------------------------

struct RegularParam {
  int n;
  int degree;
  int seed;
};

class RandomRegularSweep : public ::testing::TestWithParam<RegularParam> {};

TEST_P(RandomRegularSweep, RegularAndConnected) {
  const auto p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.seed));
  const Graph g = make_random_regular(p.n, p.degree, rng);
  for (SwitchId s = 0; s < g.num_switches(); ++s)
    EXPECT_EQ(g.degree(s), p.degree);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.num_links(), p.n * p.degree / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomRegularSweep,
                         ::testing::Values(RegularParam{10, 3, 1},
                                           RegularParam{16, 4, 2},
                                           RegularParam{25, 4, 3},
                                           RegularParam{32, 5, 4},
                                           RegularParam{12, 6, 5}));

// ---------------------------------------------------------------------------
// SurePath delivery on arbitrary topologies (paper §7).
// ---------------------------------------------------------------------------

TEST(SweepGeneric, SurePathWalksOnDragonfly) {
  Graph df = make_dragonfly(4, 1); // 5 groups x 4 switches
  DistanceTable dist(df);
  EscapeUpDown esc(df, {.root = 0, .strict_phase = true, .penalties = {},
                        .use_shortcuts = true});
  std::vector<EscapeCand> cand;
  for (SwitchId a = 0; a < df.num_switches(); ++a)
    for (SwitchId b = 0; b < df.num_switches(); ++b) {
      if (a == b) continue;
      SwitchId c = a;
      bool down = false;
      int guard = 0;
      while (c != b && guard++ <= 4 * df.num_switches()) {
        cand.clear();
        esc.candidates(c, b, down, cand);
        ASSERT_FALSE(cand.empty());
        const EscapeCand* best = &cand.front();
        for (const auto& ec : cand)
          if (ec.penalty < best->penalty) best = &ec;
        if (best->down_black) down = true;
        c = df.port(c, best->port).neighbor;
      }
      EXPECT_EQ(c, b);
    }
}

} // namespace
} // namespace hxsp
