/// \file escape_brute_test.cpp
/// Brute-force cross-validation of the escape subnetwork's distance
/// machinery: the up-digraph distances and Up/Down distances computed by
/// EscapeUpDown are compared against independent exhaustive searches on
/// small graphs, fault-free and faulty.

#include <gtest/gtest.h>

#include <deque>
#include <limits>

#include "core/escape_updown.hpp"
#include "test_util.hpp"
#include "topology/builders.hpp"
#include "topology/faults.hpp"

namespace hxsp {
namespace {

/// Independent BFS over "up" moves (towards strictly lower level).
std::vector<int> brute_up_distances(const Graph& g, const std::vector<int>& level,
                                    SwitchId from) {
  std::vector<int> d(static_cast<std::size_t>(g.num_switches()),
                     std::numeric_limits<int>::max());
  std::deque<SwitchId> q{from};
  d[static_cast<std::size_t>(from)] = 0;
  while (!q.empty()) {
    const SwitchId c = q.front();
    q.pop_front();
    for (const auto& pi : g.ports(c)) {
      if (!g.link_alive(pi.link)) continue;
      if (level[static_cast<std::size_t>(pi.neighbor)] !=
          level[static_cast<std::size_t>(c)] - 1)
        continue;
      auto& dn = d[static_cast<std::size_t>(pi.neighbor)];
      if (dn == std::numeric_limits<int>::max()) {
        dn = d[static_cast<std::size_t>(c)] + 1;
        q.push_back(pi.neighbor);
      }
    }
  }
  return d;
}

/// Brute-force Up/Down distance: min over meet switches of up+up.
int brute_updown(const Graph& g, const std::vector<int>& level, SwitchId a,
                 SwitchId b) {
  const auto ua = brute_up_distances(g, level, a);
  const auto ub = brute_up_distances(g, level, b);
  int best = std::numeric_limits<int>::max();
  for (SwitchId z = 0; z < g.num_switches(); ++z) {
    const auto za = ua[static_cast<std::size_t>(z)];
    const auto zb = ub[static_cast<std::size_t>(z)];
    if (za == std::numeric_limits<int>::max() ||
        zb == std::numeric_limits<int>::max())
      continue;
    best = std::min(best, za + zb);
  }
  return best;
}

void cross_validate(const Graph& g, SwitchId root) {
  EscapeUpDown esc(g, {.root = root, .strict_phase = false, .penalties = {},
                       .use_shortcuts = true});
  std::vector<int> level(static_cast<std::size_t>(g.num_switches()));
  const auto bfs = g.bfs(root);
  for (SwitchId s = 0; s < g.num_switches(); ++s)
    level[static_cast<std::size_t>(s)] = bfs[static_cast<std::size_t>(s)];

  for (SwitchId a = 0; a < g.num_switches(); ++a) {
    const auto brute_up = brute_up_distances(g, level, a);
    for (SwitchId b = 0; b < g.num_switches(); ++b) {
      const int expect_up = brute_up[static_cast<std::size_t>(b)];
      if (expect_up == std::numeric_limits<int>::max())
        EXPECT_EQ(esc.up_distance(a, b), kUnreachable);
      else
        EXPECT_EQ(esc.up_distance(a, b), expect_up);
      EXPECT_EQ(esc.updown_distance(a, b), brute_updown(g, level, a, b))
          << "pair " << a << "," << b;
    }
  }
}

TEST(EscapeBrute, HyperX3x3) {
  const HyperX hx({3, 3}, 1);
  cross_validate(hx.graph(), 0);
}

TEST(EscapeBrute, HyperX3x3OffCenterRoot) {
  const HyperX hx({3, 3}, 1);
  cross_validate(hx.graph(), 4);
}

TEST(EscapeBrute, Torus4x4) {
  cross_validate(make_torus(4, 4), 5);
}

TEST(EscapeBrute, RandomRegularWithFaults) {
  Rng rng(23);
  Graph g = make_random_regular(18, 4, rng);
  apply_faults(g, random_fault_links(g, 6, rng, /*keep_connected=*/true));
  cross_validate(g, 3);
}

TEST(EscapeBrute, MeshIsAllBlack) {
  // A mesh rooted at a corner has no two adjacent switches at the same
  // level in one dimension... actually meshes do have same-level links
  // (anti-diagonals). Verify the classifier against levels directly.
  Graph g = make_mesh(3, 3);
  EscapeUpDown esc(g, {.root = 0, .strict_phase = false, .penalties = {},
                       .use_shortcuts = true});
  const auto bfs = g.bfs(0);
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const auto& e = g.link(l);
    EXPECT_EQ(esc.is_black(l), bfs[static_cast<std::size_t>(e.a)] !=
                                   bfs[static_cast<std::size_t>(e.b)]);
  }
}

TEST(EscapeBrute, CompleteGraphOneLevelDeep) {
  // K_n rooted anywhere: every non-root is level 1; root links black, all
  // other links red; udist(a,b) = 2 for distinct non-root a,b via root.
  Graph g = make_complete(6);
  EscapeUpDown esc(g, {.root = 2, .strict_phase = false, .penalties = {},
                       .use_shortcuts = true});
  EXPECT_EQ(esc.num_black_links(), 5);
  EXPECT_EQ(esc.num_red_links(), 10);
  for (SwitchId a = 0; a < 6; ++a)
    for (SwitchId b = 0; b < 6; ++b) {
      if (a == b) continue;
      if (a == 2 || b == 2)
        EXPECT_EQ(esc.updown_distance(a, b), 1);
      else
        EXPECT_EQ(esc.updown_distance(a, b), 2);
    }
}

TEST(EscapeBrute, PenaltyConfigRespected) {
  const HyperX hx({4, 4}, 1);
  EscapePenalties pen{11, 7, 5, 3, 2};
  EscapeUpDown esc(hx.graph(), {.root = 0, .strict_phase = false,
                                .penalties = pen, .use_shortcuts = true});
  std::vector<EscapeCand> cand;
  bool saw_up = false, saw_down = false, saw_red = false;
  for (SwitchId c = 0; c < hx.num_switches(); ++c)
    for (SwitchId t = 0; t < hx.num_switches(); ++t) {
      if (c == t) continue;
      cand.clear();
      esc.candidates(c, t, false, cand);
      for (const auto& ec : cand) {
        const SwitchId nbr = hx.graph().port(c, ec.port).neighbor;
        if (esc.level(nbr) < esc.level(c)) {
          EXPECT_EQ(ec.penalty, 11);
          saw_up = true;
        } else if (esc.level(nbr) > esc.level(c)) {
          EXPECT_EQ(ec.penalty, 7);
          saw_down = true;
        } else {
          EXPECT_TRUE(ec.penalty == 5 || ec.penalty == 3 || ec.penalty == 2);
          saw_red = true;
        }
      }
    }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_red);
}

TEST(EscapeBrute, RootChangesLevels) {
  const HyperX hx({4, 4}, 1);
  EscapeUpDown a(hx.graph(), {.root = 0, .strict_phase = false,
                              .penalties = {}, .use_shortcuts = true});
  const SwitchId far_corner = hx.switch_at({3, 3});
  EscapeUpDown b(hx.graph(), {.root = far_corner, .strict_phase = false,
                              .penalties = {}, .use_shortcuts = true});
  EXPECT_EQ(a.level(0), 0);
  EXPECT_EQ(b.level(far_corner), 0);
  EXPECT_EQ(a.level(far_corner), 2);
  EXPECT_EQ(b.level(0), 2);
}

} // namespace
} // namespace hxsp
