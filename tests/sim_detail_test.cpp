/// \file sim_detail_test.cpp
/// Microarchitectural validation of the simulator: exact pipeline timing
/// on a two-switch network, duplex links, buffer backpressure, and the
/// server injection path. These tests pin down the timing model described
/// in sim/router.hpp so regressions are caught at cycle granularity.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace hxsp {
namespace {

/// A 1-D HyperX of side 2 is a single link between two switches — the
/// smallest network with a switch-to-switch hop.
ExperimentSpec k2_spec() {
  ExperimentSpec s;
  s.sides = {2};
  s.servers_per_switch = 1;
  s.mechanism = "minimal";
  s.pattern = "shift"; // server 0 <-> server 1
  s.sim.num_vcs = 2;
  s.warmup = 200;
  s.measure = 1000;
  return s;
}

TEST(SimDetail, SingleHopPipelineTiming) {
  // One packet per server, duplex exchange over the single link.
  // Expected pipeline (16-phit packet, xbar speedup 2, latencies 1):
  //   t=0  injection link starts; head at router t=1, tail t=16
  //   t=1  allocation grant; output-buffer head t=2
  //   t=2  switch link starts; head at far router t=3, tail t=18
  //   t=3  eject grant; eject buffer head t=4
  //   t=4  eject link starts; tail reaches the server at t=20
  // so both packets complete at cycle 20 (+1 engine step to observe).
  Experiment e(k2_spec());
  const CompletionResult res = e.run_completion(1, 10, 1000);
  ASSERT_TRUE(res.drained);
  EXPECT_GE(res.completion_time, 20);
  EXPECT_LE(res.completion_time, 22);
}

TEST(SimDetail, SerializationDominatesBackToBack) {
  // N packets per server over one duplex link: steady-state is one packet
  // per 16 cycles per direction; completion ~ N*16 + pipeline fill.
  Experiment e(k2_spec());
  const long n = 32;
  const CompletionResult res = e.run_completion(n, 100, 10000);
  ASSERT_TRUE(res.drained);
  EXPECT_GE(res.completion_time, n * 16);
  EXPECT_LE(res.completion_time, n * 16 + 64);
}

TEST(SimDetail, DuplexLinkCarriesBothDirections) {
  // Offered 1.0 in both directions simultaneously must be sustainable:
  // each direction has its own channel.
  ExperimentSpec s = k2_spec();
  s.warmup = 500;
  s.measure = 2000;
  Experiment e(s);
  const ResultRow r = e.run_load(1.0);
  EXPECT_GT(r.accepted, 0.93);
}

TEST(SimDetail, ThroughputCappedByLinkBandwidth) {
  // Two servers per switch sharing one switch-to-switch link: per-server
  // accepted load saturates at ~0.5 phits/cycle.
  ExperimentSpec s = k2_spec();
  s.servers_per_switch = 2;
  s.warmup = 500;
  s.measure = 2000;
  Experiment e(s);
  const ResultRow r = e.run_load(1.0);
  EXPECT_GT(r.accepted, 0.42);
  EXPECT_LT(r.accepted, 0.55);
}

TEST(SimDetail, LatencyIncludesQueueing) {
  ExperimentSpec s = k2_spec();
  s.servers_per_switch = 2; // contention => queueing
  s.warmup = 500;
  s.measure = 2000;
  Experiment e(s);
  const double lat_light = e.run_load(0.1).avg_latency;
  const double lat_heavy = e.run_load(0.95).avg_latency;
  EXPECT_GT(lat_light, 19.0); // at least the pipeline + serialization
  EXPECT_GT(lat_heavy, lat_light + 5.0);
}

TEST(SimDetail, GeneratedLoadMatchesBernoulliRate) {
  ExperimentSpec s = k2_spec();
  s.warmup = 1000;
  s.measure = 8000;
  Experiment e(s);
  const ResultRow r = e.run_load(0.37);
  EXPECT_NEAR(r.generated, 0.37, 0.03);
}

TEST(SimDetail, WindowExcludesWarmupTraffic) {
  // Accepted load is measured only inside the window: a tiny measure
  // window after a long warmup still reports the steady-state rate, not
  // an average over the whole run.
  ExperimentSpec s = k2_spec();
  s.warmup = 3000;
  s.measure = 500;
  Experiment e(s);
  const ResultRow r = e.run_load(0.5);
  EXPECT_NEAR(r.accepted, 0.5, 0.08);
  EXPECT_EQ(r.cycles, 500);
}

TEST(SimDetail, EscapeVcUnusedByLadderMechanisms) {
  // Ladder mechanisms never produce escape candidates; their escape VC
  // stats must stay zero even at saturation.
  ExperimentSpec s = k2_spec();
  s.mechanism = "valiant";
  s.sim.num_vcs = 4;
  Experiment e(s);
  const ResultRow r = e.run_load(1.0);
  EXPECT_DOUBLE_EQ(r.escape_frac, 0.0);
}

TEST(SimDetail, TinyBuffersStillFlow) {
  ExperimentSpec s = k2_spec();
  s.sim.input_buffer_packets = 1;
  s.sim.output_buffer_packets = 1;
  s.warmup = 500;
  s.measure = 2000;
  Experiment e(s);
  const ResultRow r = e.run_load(1.0);
  // Single-packet buffers serialize the pipeline but must not stall it.
  EXPECT_GT(r.accepted, 0.3);
}

TEST(SimDetail, LongPacketsScaleSerialization) {
  ExperimentSpec s = k2_spec();
  s.sim.packet_length = 32;
  Experiment e(s);
  const CompletionResult res = e.run_completion(1, 10, 2000);
  ASSERT_TRUE(res.drained);
  // Twice the phits: tail arrives ~2x later than the 16-phit pipeline.
  EXPECT_GE(res.completion_time, 36);
  EXPECT_LE(res.completion_time, 44);
}

TEST(SimDetail, ZeroLatencyCrossbarRejected) {
  // Config sanity: derived helpers behave.
  SimConfig cfg;
  EXPECT_EQ(cfg.xbar_cycles(), 8);
  EXPECT_EQ(cfg.input_buffer_phits(), 128);
  EXPECT_EQ(cfg.output_buffer_phits(), 64);
  cfg.packet_length = 15;
  EXPECT_EQ(cfg.xbar_cycles(), 8); // ceil(15/2)
}

TEST(SimDetail, ServerQueueDepthLimitsBurstiness) {
  // With a 1-packet injection queue, generated load under backpressure is
  // visibly below offered at saturation.
  ExperimentSpec s = k2_spec();
  s.servers_per_switch = 2;
  s.sim.server_queue_packets = 1;
  s.warmup = 500;
  s.measure = 2000;
  Experiment e(s);
  const ResultRow r = e.run_load(1.0);
  EXPECT_LT(r.generated, 0.8);
}

} // namespace
} // namespace hxsp
