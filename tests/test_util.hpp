#pragma once
/// \file test_util.hpp
/// Shared fixtures for routing-layer tests: builds a HyperX, its distance
/// table, optionally an escape subnetwork, and a NetworkContext over them.

#include <memory>

#include "core/escape_updown.hpp"
#include "routing/mechanism.hpp"
#include "topology/distance.hpp"
#include "topology/hyperx.hpp"

namespace hxsp::testutil {

/// Owns every long-lived structure a routing test needs.
struct TestNet {
  std::unique_ptr<HyperX> hx;
  std::unique_ptr<DistanceTable> dist;
  std::unique_ptr<EscapeUpDown> escape;
  NetworkContext ctx;

  /// Rebuilds distance tables and escape (call after fault injection).
  void rebuild(SwitchId escape_root = 0, bool strict = false,
               bool shortcuts = true) {
    dist = std::make_unique<DistanceTable>(hx->graph());
    EscapeUpDown::Config ecfg;
    ecfg.root = escape_root;
    ecfg.strict_phase = strict;
    ecfg.use_shortcuts = shortcuts;
    escape = std::make_unique<EscapeUpDown>(hx->graph(), ecfg);
    ctx.graph = &hx->graph();
    ctx.hyperx = hx.get();
    ctx.dist = dist.get();
    ctx.escape = escape.get();
  }
};

/// A regular HyperX of \p dims dimensions and side \p side with contexts.
inline TestNet make_net(int dims, int side, int num_vcs = 4,
                        int servers_per_switch = 1) {
  TestNet t;
  t.hx = std::make_unique<HyperX>(
      std::vector<int>(static_cast<std::size_t>(dims), side),
      servers_per_switch);
  t.rebuild();
  t.ctx.num_vcs = num_vcs;
  t.ctx.packet_length = 16;
  return t;
}

/// A packet routed from switch \p src to switch \p dst (server 0 each).
inline Packet make_packet(const TestNet& t, SwitchId src, SwitchId dst) {
  Packet p;
  p.id = 1;
  p.src_switch = src;
  p.dst_switch = dst;
  p.src_server = src * t.hx->servers_per_switch();
  p.dst_server = dst * t.hx->servers_per_switch();
  p.length = t.ctx.packet_length;
  return p;
}

} // namespace hxsp::testutil
