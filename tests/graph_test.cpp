/// \file graph_test.cpp
/// Unit tests for the graph substrate: construction, port mapping, faults,
/// BFS, connectivity, builders and the all-pairs distance table.

#include <gtest/gtest.h>

#include "topology/builders.hpp"
#include "topology/distance.hpp"
#include "topology/graph.hpp"

namespace hxsp {
namespace {

TEST(Graph, AddLinkAssignsPortsInOrder) {
  Graph g(3);
  const LinkId l01 = g.add_link(0, 1);
  const LinkId l02 = g.add_link(0, 2);
  EXPECT_EQ(l01, 0);
  EXPECT_EQ(l02, 1);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.port(0, 0).neighbor, 1);
  EXPECT_EQ(g.port(0, 1).neighbor, 2);
  EXPECT_EQ(g.port(1, 0).neighbor, 0);
  EXPECT_EQ(g.port(1, 0).remote_port, 0);
  EXPECT_EQ(g.port(0, 1).remote_port, 0);
}

TEST(Graph, LinkEndsConsistentWithPorts) {
  Graph g(4);
  g.add_link(2, 3);
  const auto& e = g.link(0);
  EXPECT_EQ(e.a, 2);
  EXPECT_EQ(e.b, 3);
  EXPECT_EQ(g.port(e.a, e.port_a).neighbor, e.b);
  EXPECT_EQ(g.port(e.b, e.port_b).neighbor, e.a);
}

TEST(Graph, FailAndRestoreLink) {
  Graph g(2);
  const LinkId l = g.add_link(0, 1);
  EXPECT_TRUE(g.link_alive(l));
  EXPECT_EQ(g.num_alive_links(), 1);
  g.fail_link(l);
  EXPECT_FALSE(g.link_alive(l));
  EXPECT_FALSE(g.port_alive(0, 0));
  EXPECT_EQ(g.num_alive_links(), 0);
  g.fail_link(l); // idempotent
  EXPECT_EQ(g.num_alive_links(), 0);
  g.restore_link(l);
  EXPECT_TRUE(g.link_alive(l));
  EXPECT_EQ(g.num_alive_links(), 1);
}

TEST(Graph, RestoreAll) {
  Graph g = make_complete(5);
  for (LinkId l = 0; l < g.num_links(); ++l) g.fail_link(l);
  EXPECT_EQ(g.num_alive_links(), 0);
  g.restore_all();
  EXPECT_EQ(g.num_alive_links(), g.num_links());
}

TEST(Graph, AliveDegree) {
  Graph g = make_complete(4);
  EXPECT_EQ(g.alive_degree(0), 3);
  g.fail_link(g.port(0, 0).link);
  EXPECT_EQ(g.alive_degree(0), 2);
}

TEST(Graph, BfsDistancesOnPath) {
  // 0 - 1 - 2 - 3 path
  Graph g = make_from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto d = g.bfs(0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 2);
  EXPECT_EQ(d[3], 3);
}

TEST(Graph, BfsUnreachableAfterCut) {
  Graph g = make_from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  g.fail_link(1); // cut 1-2
  const auto d = g.bfs(0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Graph, ConnectivityAndComponents) {
  Graph g = make_from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_FALSE(g.connected());
  EXPECT_EQ(g.num_components(), 2);
  g.add_link(2, 3);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.num_components(), 1);
}

TEST(Builders, CompleteGraph) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_links(), 15);
  for (SwitchId s = 0; s < 6; ++s) EXPECT_EQ(g.degree(s), 5);
  EXPECT_TRUE(g.connected());
}

TEST(Builders, Mesh) {
  const Graph g = make_mesh(3, 4);
  EXPECT_EQ(g.num_switches(), 12);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
  EXPECT_EQ(g.num_links(), 17);
  EXPECT_TRUE(g.connected());
  const DistanceTable d(g);
  EXPECT_EQ(d.diameter(), 3 - 1 + 4 - 1);
}

TEST(Builders, Torus) {
  const Graph g = make_torus(4, 4);
  EXPECT_EQ(g.num_switches(), 16);
  EXPECT_EQ(g.num_links(), 32);
  for (SwitchId s = 0; s < 16; ++s) EXPECT_EQ(g.degree(s), 4);
  const DistanceTable d(g);
  EXPECT_EQ(d.diameter(), 4); // 2 + 2
}

TEST(Builders, RandomRegularIsRegularAndConnected) {
  Rng rng(3);
  const Graph g = make_random_regular(20, 4, rng);
  EXPECT_EQ(g.num_links(), 40);
  for (SwitchId s = 0; s < 20; ++s) EXPECT_EQ(g.degree(s), 4);
  EXPECT_TRUE(g.connected());
}

TEST(Distance, MatchesBfsPerRow) {
  Rng rng(5);
  Graph g = make_random_regular(24, 3, rng);
  g.fail_link(0);
  const DistanceTable t(g);
  for (SwitchId s = 0; s < g.num_switches(); s += 5) {
    const auto row = g.bfs(s);
    for (SwitchId u = 0; u < g.num_switches(); ++u)
      EXPECT_EQ(t.at(s, u), row[static_cast<std::size_t>(u)]);
  }
}

TEST(Distance, SymmetricOnUndirectedGraph) {
  Rng rng(7);
  const Graph g = make_random_regular(16, 3, rng);
  const DistanceTable t(g);
  for (SwitchId a = 0; a < 16; ++a)
    for (SwitchId b = 0; b < 16; ++b) EXPECT_EQ(t.at(a, b), t.at(b, a));
}

TEST(Distance, CompleteGraphStats) {
  const Graph g = make_complete(10);
  const DistanceTable t(g);
  EXPECT_EQ(t.diameter(), 1);
  // Average over ordered pairs including self: 90/100.
  EXPECT_NEAR(t.average_distance(), 0.9, 1e-12);
  EXPECT_EQ(t.eccentricity(0), 1);
}

TEST(Distance, DisconnectedReportsUnreachable) {
  Graph g = make_from_edges(3, {{0, 1}});
  const DistanceTable t(g);
  EXPECT_FALSE(t.connected());
  EXPECT_EQ(t.diameter_if_connected(), std::nullopt);
  EXPECT_EQ(t.eccentricity_if_connected(0), std::nullopt);
  EXPECT_LT(t.average_distance(), 0);
  EXPECT_FALSE(t.reachable(0, 2));
  EXPECT_TRUE(t.reachable(0, 1));
  EXPECT_EQ(t.at(0, 2), kUnreachable);
}

TEST(DistanceDeathTest, DiameterAbortsOnDisconnectedGraph) {
  // The old behaviour returned the kUnreachable sentinel (255) as a plain
  // int, which callers multiplied into TTL bounds (4 * diameter()). The
  // sentinel is not a number; asking for it must be loud.
  Graph g = make_from_edges(3, {{0, 1}});
  const DistanceTable t(g);
  EXPECT_DEATH((void)t.diameter(), "disconnected");
  EXPECT_DEATH((void)t.eccentricity(0), "disconnected");
}

TEST(Distance, TriangleInequalityHolds) {
  Rng rng(11);
  const Graph g = make_random_regular(18, 4, rng);
  const DistanceTable t(g);
  for (SwitchId a = 0; a < 18; ++a)
    for (SwitchId b = 0; b < 18; ++b)
      for (SwitchId c = 0; c < 18; c += 3)
        EXPECT_LE(t.at(a, b), t.at(a, c) + t.at(c, b));
}

} // namespace
} // namespace hxsp
