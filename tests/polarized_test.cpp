/// \file polarized_test.cpp
/// Polarized routing tests: exhaustive verification of the paper's Table 1
/// (allowed (Ds,Dt) combinations, Dmu priorities), cycle-filtering of the
/// Dmu = 0 cases, liveness and the 2x-diameter route-length bound.

#include <gtest/gtest.h>

#include "routing/polarized.hpp"
#include "test_util.hpp"
#include "topology/faults.hpp"

namespace hxsp {
namespace {

using testutil::make_net;
using testutil::make_packet;
using testutil::TestNet;

/// Recomputes (Ds, Dt) for a candidate and checks Table 1 membership.
void verify_candidate_against_table1(const TestNet& t, const Packet& p,
                                     SwitchId c, const PortCand& pc,
                                     const PolarizedPenalties& pen) {
  const SwitchId n = t.hx->graph().port(c, pc.port).neighbor;
  const int ds = t.dist->at(n, p.src_switch) - t.dist->at(c, p.src_switch);
  const int dt = t.dist->at(n, p.dst_switch) - t.dist->at(c, p.dst_switch);
  const int dmu = ds - dt;
  ASSERT_GE(dmu, 0) << "candidate decreases mu";
  switch (dmu) {
    case 2:
      EXPECT_EQ(ds, 1);
      EXPECT_EQ(dt, -1);
      EXPECT_EQ(pc.penalty, pen.dmu2);
      break;
    case 1:
      EXPECT_TRUE((ds == 1 && dt == 0) || (ds == 0 && dt == -1))
          << "Dmu=1 must be (+1,0) or (0,-1)";
      EXPECT_EQ(pc.penalty, pen.dmu1);
      break;
    case 0: {
      EXPECT_TRUE((ds == 1 && dt == 1) || (ds == -1 && dt == -1))
          << "Dmu=0 must be (+1,+1) or (-1,-1); (0,0) is excluded";
      EXPECT_EQ(pc.penalty, pen.dmu0);
      const bool first_half =
          t.dist->at(c, p.src_switch) < t.dist->at(c, p.dst_switch);
      if (ds == 1) { EXPECT_TRUE(first_half); }
      if (ds == -1) { EXPECT_FALSE(first_half); }
      break;
    }
    default:
      FAIL() << "Dmu out of range: " << dmu;
  }
}

TEST(Polarized, Table1ExhaustiveOn2D) {
  auto t = make_net(2, 4);
  PolarizedAlgorithm algo;
  PolarizedPenalties pen;
  std::vector<PortCand> out;
  for (SwitchId s = 0; s < t.hx->num_switches(); ++s) {
    for (SwitchId d = 0; d < t.hx->num_switches(); ++d) {
      if (s == d) continue;
      for (SwitchId c = 0; c < t.hx->num_switches(); ++c) {
        if (c == d) continue;
        Packet p = make_packet(t, s, d);
        out.clear();
        algo.ports(t.ctx, p, c, out);
        for (const auto& pc : out)
          verify_candidate_against_table1(t, p, c, pc, pen);
      }
    }
  }
}

TEST(Polarized, MinimalHopAlwaysOfferedFaultFree) {
  // In a fault-free Hamming graph some candidate always exists while
  // c != t (see DESIGN.md); in particular a hop decreasing d(c,t).
  auto t = make_net(3, 3);
  PolarizedAlgorithm algo;
  std::vector<PortCand> out;
  for (SwitchId s = 0; s < t.hx->num_switches(); ++s) {
    for (SwitchId d = 0; d < t.hx->num_switches(); ++d) {
      if (s == d) continue;
      for (SwitchId c = 0; c < t.hx->num_switches(); ++c) {
        if (c == d) continue;
        Packet p = make_packet(t, s, d);
        out.clear();
        algo.ports(t.ctx, p, c, out);
        EXPECT_FALSE(out.empty())
            << "no polarized candidate at c=" << c << " for " << s << "->" << d;
      }
    }
  }
}

/// Greedy walk following the best (lowest-penalty, lowest-port) candidate.
int polarized_walk(const TestNet& t, SwitchId src, SwitchId dst, int max_hops) {
  PolarizedAlgorithm algo;
  Packet p = testutil::make_packet(t, src, dst);
  SwitchId c = src;
  std::vector<PortCand> out;
  int hops = 0;
  while (c != dst) {
    if (hops > max_hops) return -1;
    out.clear();
    algo.ports(t.ctx, p, c, out);
    if (out.empty()) return -1;
    const PortCand* best = &out.front();
    for (const auto& pc : out)
      if (pc.penalty < best->penalty ||
          (pc.penalty == best->penalty && pc.port < best->port))
        best = &pc;
    c = t.hx->graph().port(c, best->port).neighbor;
    ++hops;
  }
  return hops;
}

TEST(Polarized, GreedyRoutesAtMostTwiceDiameter) {
  // Paper §3.1.2: polarized routes in the HyperX are at most twice the
  // network diameter.
  auto t = make_net(2, 5);
  const int bound = 2 * t.dist->diameter();
  for (SwitchId a = 0; a < t.hx->num_switches(); ++a)
    for (SwitchId b = 0; b < t.hx->num_switches(); ++b) {
      if (a == b) continue;
      const int hops = polarized_walk(t, a, b, bound);
      ASSERT_GE(hops, 0) << a << "->" << b;
      EXPECT_LE(hops, bound);
    }
}

TEST(Polarized, GreedyFollowsMinimalWhenAvailable) {
  // With the greedy choice the best candidate has Dmu = 2 when one exists,
  // so adjacent pairs route in one hop.
  auto t = make_net(2, 4);
  for (SwitchId a = 0; a < t.hx->num_switches(); ++a)
    for (const auto& pi : t.hx->graph().ports(a))
      EXPECT_EQ(polarized_walk(t, a, pi.neighbor, 4), 1);
}

TEST(Polarized, WeightNeverDecreasesAlongWalk) {
  auto t = make_net(3, 3);
  PolarizedAlgorithm algo;
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const SwitchId s = static_cast<SwitchId>(
        rng.next_below(static_cast<std::uint64_t>(t.hx->num_switches())));
    const SwitchId d = static_cast<SwitchId>(
        rng.next_below(static_cast<std::uint64_t>(t.hx->num_switches())));
    if (s == d) continue;
    Packet p = make_packet(t, s, d);
    SwitchId c = s;
    int mu = -t.dist->at(s, d); // d(c,s) - d(c,t) at c = s
    std::vector<PortCand> out;
    int guard = 0;
    while (c != d && guard++ < 32) {
      out.clear();
      algo.ports(t.ctx, p, c, out);
      ASSERT_FALSE(out.empty());
      const auto& pick = out[rng.next_below(out.size())];
      c = t.hx->graph().port(c, pick.port).neighbor;
      const int mu2 = static_cast<int>(t.dist->at(c, s)) - t.dist->at(c, d);
      EXPECT_GE(mu2, mu);
      mu = mu2;
    }
  }
}

TEST(Polarized, UsesDistanceTablesUnderFaults) {
  // Polarized reads BFS tables, so its candidates adapt to faults (§1).
  auto t = make_net(2, 4);
  Rng rng(9);
  apply_faults(t.hx->graph(),
               random_fault_links(t.hx->graph(), 10, rng, true));
  t.rebuild();
  PolarizedAlgorithm algo;
  std::vector<PortCand> out;
  int pairs = 0, with_candidates = 0;
  for (SwitchId a = 0; a < t.hx->num_switches(); ++a)
    for (SwitchId b = 0; b < t.hx->num_switches(); ++b) {
      if (a == b) continue;
      Packet p = make_packet(t, a, b);
      out.clear();
      algo.ports(t.ctx, p, a, out);
      ++pairs;
      with_candidates += !out.empty();
      for (const auto& pc : out)
        EXPECT_TRUE(t.hx->graph().port_alive(a, pc.port));
    }
  // Most pairs keep candidates; SurePath's escape covers the rest.
  EXPECT_GT(with_candidates, pairs * 9 / 10);
}

TEST(Polarized, CustomPenaltiesRespected) {
  auto t = make_net(2, 4);
  PolarizedAlgorithm algo({.dmu2 = 5, .dmu1 = 7, .dmu0 = 11});
  const SwitchId s = t.hx->switch_at({0, 0});
  const SwitchId d = t.hx->switch_at({1, 1});
  Packet p = make_packet(t, s, d);
  std::vector<PortCand> out;
  algo.ports(t.ctx, p, s, out);
  ASSERT_FALSE(out.empty());
  for (const auto& pc : out)
    EXPECT_TRUE(pc.penalty == 5 || pc.penalty == 7 || pc.penalty == 11);
}

TEST(Polarized, WorksOnGenericGraphs) {
  // Polarized needs only distance tables; check liveness on a torus-like
  // random regular graph (fault-free) with bounded walks.
  TestNet t;
  t.hx = std::make_unique<HyperX>(std::vector<int>{3, 3}, 1);
  t.rebuild();
  t.ctx.num_vcs = 4;
  t.ctx.packet_length = 16;
  for (SwitchId a = 0; a < t.hx->num_switches(); ++a)
    for (SwitchId b = 0; b < t.hx->num_switches(); ++b)
      if (a != b) { EXPECT_GE(polarized_walk(t, a, b, 8), 0); }
}

} // namespace
} // namespace hxsp
