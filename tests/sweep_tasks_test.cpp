/// \file sweep_tasks_test.cpp
/// The generalized sweep engine's contract for heterogeneous task kinds:
/// completion-mode and dynamic-fault-mode tasks (and mixed grids of all
/// three kinds) must produce results bit-identical to the serial loop at
/// any worker count, delivered strictly in submission order, with the
/// exception-drain path intact for every variant. Also locks down the
/// ext_dynamic_faults convergence invariant: once all FaultEvents have
/// fired, the dynamic run reaches the steady state of a static run with
/// the same fault set.

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "harness/sweep.hpp"
#include "topology/faults.hpp"

namespace hxsp {
namespace {

ExperimentSpec small_spec(const std::string& mech = "polsp") {
  ExperimentSpec s;
  s.sides = {4, 4};
  s.servers_per_switch = 2;
  s.mechanism = mech;
  s.pattern = "uniform";
  s.sim.num_vcs = 4;
  s.warmup = 300;
  s.measure = 600;
  s.seed = 7;
  return s;
}

void expect_identical(const ResultRow& a, const ResultRow& b,
                      const char* what) {
  EXPECT_EQ(a.mechanism, b.mechanism) << what;
  EXPECT_EQ(a.pattern, b.pattern) << what;
  EXPECT_EQ(a.offered, b.offered) << what;
  EXPECT_EQ(a.generated, b.generated) << what;
  EXPECT_EQ(a.accepted, b.accepted) << what;
  EXPECT_EQ(a.avg_latency, b.avg_latency) << what;
  EXPECT_EQ(a.jain, b.jain) << what;
  EXPECT_EQ(a.escape_frac, b.escape_frac) << what;
  EXPECT_EQ(a.forced_frac, b.forced_frac) << what;
  EXPECT_EQ(a.p99_latency, b.p99_latency) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.packets, b.packets) << what;
}

void expect_identical(const TimeSeries& a, const TimeSeries& b,
                      const char* what) {
  EXPECT_EQ(a.width(), b.width()) << what;
  ASSERT_EQ(a.num_buckets(), b.num_buckets()) << what;
  for (std::size_t i = 0; i < a.num_buckets(); ++i)
    EXPECT_EQ(a.bucket(i), b.bucket(i)) << what << " bucket " << i;
}

void expect_identical(const CompletionResult& a, const CompletionResult& b,
                      const char* what) {
  EXPECT_EQ(a.mechanism, b.mechanism) << what;
  EXPECT_EQ(a.pattern, b.pattern) << what;
  EXPECT_EQ(a.drained, b.drained) << what;
  EXPECT_EQ(a.completion_time, b.completion_time) << what;
  EXPECT_EQ(a.num_servers, b.num_servers) << what;
  expect_identical(a.series, b.series, what);
}

void expect_identical(const DynamicResult& a, const DynamicResult& b,
                      const char* what) {
  expect_identical(a.row, b.row, what);
  EXPECT_EQ(a.dropped, b.dropped) << what;
  EXPECT_EQ(a.num_servers, b.num_servers) << what;
  expect_identical(a.series, b.series, what);
}

std::vector<FaultEvent> small_events(const ExperimentSpec& spec, int n) {
  HyperX scratch(spec.sides, spec.servers_per_switch);
  Rng rng(spec.seed + 17);
  const auto links = random_fault_links(scratch.graph(), n, rng, true);
  std::vector<FaultEvent> events;
  for (int i = 0; i < n; ++i)
    events.push_back({spec.warmup + (i + 1) * spec.measure / (n + 1),
                      links[static_cast<std::size_t>(i)]});
  return events;
}

// ---------------------------------------------------------------------------
// Task model basics.
// ---------------------------------------------------------------------------

TEST(TaskSpec, FactoriesSetKindAndParameters) {
  const ExperimentSpec spec = small_spec();

  const TaskSpec r = TaskSpec::rate(spec, 0.7);
  EXPECT_EQ(r.kind, TaskKind::kRate);
  EXPECT_EQ(r.offered, 0.7);

  const TaskSpec c = TaskSpec::completion(spec, 40, 250, 100000);
  EXPECT_EQ(c.kind, TaskKind::kCompletion);
  EXPECT_EQ(c.packets_per_server, 40);
  EXPECT_EQ(c.bucket_width, 250);
  EXPECT_EQ(c.max_cycles, 100000);

  const TaskSpec d = TaskSpec::dynamic_faults(spec, 0.6, {{500, 3}});
  EXPECT_EQ(d.kind, TaskKind::kDynamic);
  EXPECT_EQ(d.offered, 0.6);
  ASSERT_EQ(d.events.size(), 1u);
  EXPECT_EQ(d.events[0].link, 3);

  EXPECT_STREQ(task_kind_name(TaskKind::kRate), "rate");
  EXPECT_STREQ(task_kind_name(TaskKind::kCompletion), "completion");
  EXPECT_STREQ(task_kind_name(TaskKind::kDynamic), "dynamic");
}

TEST(TaskSpec, ResultAccessorsMatchKind) {
  const ExperimentSpec spec = small_spec();
  const TaskResult rate = run_task(TaskSpec::rate(spec, 0.5));
  EXPECT_EQ(task_result_kind(rate), TaskKind::kRate);
  ASSERT_NE(task_result_row(rate), nullptr);
  EXPECT_EQ(task_result_row(rate)->offered, 0.5);

  const TaskResult comp =
      run_task(TaskSpec::completion(spec, 10, 250, 100000));
  EXPECT_EQ(task_result_kind(comp), TaskKind::kCompletion);
  EXPECT_EQ(task_result_row(comp), nullptr);
  EXPECT_EQ(std::get<CompletionResult>(comp).mechanism, "PolSP");
  EXPECT_EQ(std::get<CompletionResult>(comp).pattern, "uniform");

  const TaskResult dyn = run_task(
      TaskSpec::dynamic_faults(spec, 0.5, small_events(spec, 2)));
  EXPECT_EQ(task_result_kind(dyn), TaskKind::kDynamic);
  ASSERT_NE(task_result_row(dyn), nullptr);
  EXPECT_EQ(task_result_row(dyn)->mechanism, "PolSP");
}

TEST(TaskSpec, ExpandTaskSeedsKeepsKindAndParameters) {
  const TaskSpec proto = TaskSpec::completion(small_spec(), 16, 500, 50000);
  const auto tasks = ParallelSweep::expand_task_seeds(proto, 90, 3);
  ASSERT_EQ(tasks.size(), 3u);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(tasks[static_cast<std::size_t>(t)].kind, TaskKind::kCompletion);
    EXPECT_EQ(tasks[static_cast<std::size_t>(t)].spec.seed,
              90u + static_cast<std::uint64_t>(t));
    EXPECT_EQ(tasks[static_cast<std::size_t>(t)].packets_per_server, 16);
  }
}

// ---------------------------------------------------------------------------
// Bit-identity: serial loop vs 1/2/8 workers, per task kind.
// ---------------------------------------------------------------------------

TEST(TaskSpecs, CompletionMatchesSerialBitIdentically) {
  std::vector<TaskSpec> tasks;
  for (const char* mech : {"omnisp", "polsp"})
    for (long packets : {8L, 16L})
      tasks.push_back(
          TaskSpec::completion(small_spec(mech), packets, 250, 200000));

  // The serial reference: one fresh Experiment per task, like a pre-engine
  // driver loop.
  std::vector<CompletionResult> serial;
  for (const TaskSpec& task : tasks) {
    Experiment e(task.spec);
    serial.push_back(e.run_completion(task.packets_per_server,
                                      task.bucket_width, task.max_cycles));
    EXPECT_TRUE(serial.back().drained);
  }

  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE(testing::Message() << "workers=" << workers);
    ParallelSweep sweep(workers);
    const auto par = sweep.run_tasks(tasks);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      expect_identical(serial[i], std::get<CompletionResult>(par[i]),
                       "serial vs parallel completion");
  }
}

TEST(TaskSpecs, DynamicMatchesSerialBitIdentically) {
  std::vector<TaskSpec> tasks;
  for (const char* mech : {"omnisp", "polsp"}) {
    const ExperimentSpec spec = small_spec(mech);
    tasks.push_back(
        TaskSpec::dynamic_faults(spec, 0.6, small_events(spec, 2)));
    tasks.push_back(
        TaskSpec::dynamic_faults(spec, 0.9, small_events(spec, 3)));
  }

  std::vector<DynamicResult> serial;
  for (const TaskSpec& task : tasks) {
    Experiment e(task.spec);
    serial.push_back(e.run_load_dynamic(task.offered, task.events));
  }

  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE(testing::Message() << "workers=" << workers);
    ParallelSweep sweep(workers);
    const auto par = sweep.run_tasks(tasks);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      expect_identical(serial[i], std::get<DynamicResult>(par[i]),
                       "serial vs parallel dynamic");
  }
}

TEST(TaskSpecs, RateTasksMatchRunExactly) {
  const ExperimentSpec spec = small_spec();
  const std::vector<double> loads = {0.3, 0.7, 1.0};
  std::vector<TaskSpec> tasks;
  for (double l : loads) tasks.push_back(TaskSpec::rate(spec, l));

  ParallelSweep sweep(2);
  const auto rows = sweep.run(ParallelSweep::expand_loads(spec, loads));
  const auto results = sweep.run_tasks(tasks);
  ASSERT_EQ(results.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    expect_identical(rows[i], std::get<ResultRow>(results[i]),
                     "run vs run_tasks");
}

TEST(TaskSpecs, NearSaturationMatchesSerialBitIdentically) {
  // Near/at saturation every engine structure is under pressure: ring
  // buffers run full, the packet pool recycles at the maximum rate, heads
  // park and wake constantly, and the escape subnetwork carries forced
  // hops. A faulted spec on both SurePath mechanisms at loads up to 1.0
  // must still be bit-identical to the serial loop at any worker count —
  // the regression tripwire for the pooled/ring/active-set engine.
  for (const std::string& mech : {std::string("polsp"), std::string("omnisp")}) {
    ExperimentSpec spec = small_spec(mech);
    HyperX scratch(spec.sides, spec.servers_per_switch);
    Rng frng(spec.seed + 23);
    spec.fault_links = random_fault_links(scratch.graph(), 3, frng, true);

    std::vector<TaskSpec> tasks;
    for (double l : {0.85, 0.95, 1.0}) tasks.push_back(TaskSpec::rate(spec, l));

    std::vector<ResultRow> serial;
    for (const TaskSpec& t : tasks)
      serial.push_back(std::get<ResultRow>(run_task(t)));
    // Saturated queues mean real backpressure reached the servers.
    EXPECT_LT(serial.back().accepted, serial.back().offered);

    for (int workers : {1, 2, 8}) {
      ParallelSweep sweep(workers);
      const auto par = sweep.run_tasks(tasks);
      ASSERT_EQ(par.size(), serial.size());
      const std::string what =
          mech + " near-saturation, workers=" + std::to_string(workers);
      for (std::size_t i = 0; i < serial.size(); ++i)
        expect_identical(serial[i], std::get<ResultRow>(par[i]), what.c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// Ordering and repeatability for mixed-kind grids.
// ---------------------------------------------------------------------------

std::vector<TaskSpec> mixed_tasks() {
  const ExperimentSpec spec = small_spec();
  std::vector<TaskSpec> tasks;
  tasks.push_back(TaskSpec::completion(spec, 12, 250, 200000));
  tasks.push_back(TaskSpec::rate(spec, 0.8));
  tasks.push_back(TaskSpec::dynamic_faults(spec, 0.6, small_events(spec, 2)));
  tasks.push_back(TaskSpec::rate(spec, 0.2));
  tasks.push_back(TaskSpec::completion(spec, 4, 250, 200000));
  return tasks;
}

TEST(TaskSpecs, MixedKindsDeliveredInSubmissionOrder) {
  const auto tasks = mixed_tasks();
  ParallelSweep sweep(4);
  std::vector<std::size_t> order;
  const auto results =
      sweep.run_tasks(tasks, [&](std::size_t i, const TaskResult& r) {
        order.push_back(i);
        EXPECT_EQ(task_result_kind(r), tasks[i].kind);
      });
  ASSERT_EQ(results.size(), tasks.size());
  std::vector<std::size_t> expected(tasks.size());
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    EXPECT_EQ(task_result_kind(results[i]), tasks[i].kind);
}

TEST(TaskSpecs, MixedRepeatedRunsAreIdentical) {
  const auto tasks = mixed_tasks();
  ParallelSweep sweep(2);
  const auto first = sweep.run_tasks(tasks);
  const auto second = sweep.run_tasks(tasks);  // same pool, fresh run
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    switch (tasks[i].kind) {
      case TaskKind::kRate:
        expect_identical(std::get<ResultRow>(first[i]),
                         std::get<ResultRow>(second[i]), "repeat rate");
        break;
      case TaskKind::kCompletion:
        expect_identical(std::get<CompletionResult>(first[i]),
                         std::get<CompletionResult>(second[i]),
                         "repeat completion");
        break;
      case TaskKind::kDynamic:
        expect_identical(std::get<DynamicResult>(first[i]),
                         std::get<DynamicResult>(second[i]), "repeat dynamic");
        break;
      case TaskKind::kWorkload:
      case TaskKind::kMultitenant:
        // mixed_tasks() has neither; those kinds' repeat/worker-count
        // identity lives in tests/workload_test.cpp and
        // tests/tenant_test.cpp.
        FAIL() << "unexpected workload/multitenant task in mixed grid";
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Exception drain, per variant: a throwing on_result reaches the caller
// only after the pool has drained, and leaves the sweep reusable.
// ---------------------------------------------------------------------------

void check_exception_drain(std::vector<TaskSpec> tasks) {
  ParallelSweep sweep(4);
  std::size_t delivered = 0;
  EXPECT_THROW(sweep.run_tasks(tasks,
                               [&](std::size_t i, const TaskResult&) {
                                 delivered = i + 1;
                                 if (i == 1) throw std::runtime_error("boom");
                               }),
               std::runtime_error);
  EXPECT_EQ(delivered, 2u);  // delivery stopped exactly at the throw
  const auto results = sweep.run_tasks(tasks);  // same pool, still functional
  ASSERT_EQ(results.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    EXPECT_EQ(task_result_kind(results[i]), tasks[i].kind);
}

TEST(TaskSpecs, CompletionExceptionDrainsAndPropagates) {
  const ExperimentSpec spec = small_spec();
  std::vector<TaskSpec> tasks;
  for (long packets : {4L, 8L, 12L, 16L})
    tasks.push_back(TaskSpec::completion(spec, packets, 250, 200000));
  check_exception_drain(std::move(tasks));
}

TEST(TaskSpecs, DynamicExceptionDrainsAndPropagates) {
  const ExperimentSpec spec = small_spec();
  std::vector<TaskSpec> tasks;
  for (double load : {0.3, 0.5, 0.7, 0.9})
    tasks.push_back(
        TaskSpec::dynamic_faults(spec, load, small_events(spec, 2)));
  check_exception_drain(std::move(tasks));
}

// ---------------------------------------------------------------------------
// The generic ordered map (what non-simulation drivers run on).
// ---------------------------------------------------------------------------

TEST(SweepMap, OrderedAndDeterministic) {
  ParallelSweep sweep(4);
  std::vector<std::size_t> order;
  const auto out = sweep.map<int>(
      16, [](std::size_t i) { return static_cast<int>(i) * 3 + 1; },
      [&](std::size_t i, const int& v) {
        order.push_back(i);
        EXPECT_EQ(v, static_cast<int>(i) * 3 + 1);
      });
  ASSERT_EQ(out.size(), 16u);
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(SweepMap, WorkerExceptionDrainsAndPropagates) {
  ParallelSweep sweep(4);
  EXPECT_THROW(sweep.map<int>(8,
                              [](std::size_t i) {
                                if (i == 3) throw std::runtime_error("bad");
                                return static_cast<int>(i);
                              }),
               std::runtime_error);
  const auto out =
      sweep.map<int>(4, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

// ---------------------------------------------------------------------------
// ext_dynamic_faults convergence invariant: after all FaultEvents fire,
// the dynamic run's steady state matches a static run with the same
// fault set. Mirrors the driver's construction (fault links drawn with
// seed+17, events inside the measurement window) but places the events
// early so most of the window is steady state.
// ---------------------------------------------------------------------------

TEST(TaskSpecs, DynamicConvergesToStaticReference) {
  ExperimentSpec spec;
  spec.sides = {4, 4};
  spec.servers_per_switch = 4;
  spec.mechanism = "polsp";
  spec.pattern = "uniform";
  spec.sim.num_vcs = 4;
  spec.warmup = 1000;
  spec.measure = 8000;
  spec.seed = 3;

  HyperX scratch(spec.sides, spec.servers_per_switch);
  Rng rng(spec.seed + 17);
  const auto links = random_fault_links(scratch.graph(), 3, rng, true);

  // All failures strike in the first 10% of the window; the remaining 90%
  // must be the static network's steady state.
  std::vector<FaultEvent> events;
  for (int i = 0; i < 3; ++i)
    events.push_back(
        {spec.warmup + (i + 1) * spec.measure / 40,
         links[static_cast<std::size_t>(i)]});

  ExperimentSpec static_spec = spec;
  static_spec.fault_links = links;

  ParallelSweep sweep(2);
  const auto results = sweep.run_tasks(
      {TaskSpec::dynamic_faults(spec, 0.5, events),
       TaskSpec::rate(static_spec, 0.5)});
  const DynamicResult& dyn = std::get<DynamicResult>(results[0]);
  const ResultRow& ref = std::get<ResultRow>(results[1]);

  // Whole-window accepted rate: within noise of the static reference.
  EXPECT_NEAR(dyn.row.accepted, ref.accepted, 0.06);

  // Steady state proper: the average rate over the last quarter of the
  // trace (long after the last event) must match the static reference.
  const std::size_t buckets = dyn.series.num_buckets();
  ASSERT_GE(buckets, 8u);
  double tail = 0;
  const std::size_t tail_start = buckets - buckets / 4;
  for (std::size_t b = tail_start; b < buckets; ++b)
    tail += dyn.series.rate(b, static_cast<double>(dyn.num_servers));
  tail /= static_cast<double>(buckets - tail_start);
  EXPECT_NEAR(tail, ref.accepted, 0.08);

  // And the events really did fire: links died, so some packets dropped
  // or the escape saw forced traffic; at minimum the run differs from a
  // fault-free one.
  EXPECT_GE(dyn.dropped, 0);
}

} // namespace
} // namespace hxsp
