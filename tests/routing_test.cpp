/// \file routing_test.cpp
/// Tests for the base route sets (Minimal, DOR, Valiant, Omnidimensional)
/// and the Ladder VC mechanism.

#include <gtest/gtest.h>

#include <set>

#include "routing/dor.hpp"
#include "routing/factory.hpp"
#include "routing/ladder.hpp"
#include "routing/minimal.hpp"
#include "routing/omnidimensional.hpp"
#include "routing/valiant.hpp"
#include "test_util.hpp"
#include "topology/faults.hpp"

namespace hxsp {
namespace {

using testutil::make_net;
using testutil::make_packet;

TEST(Minimal, AllMinimalNeighboursOffered) {
  auto t = make_net(2, 4);
  MinimalAlgorithm algo;
  const SwitchId src = t.hx->switch_at({0, 0});
  const SwitchId dst = t.hx->switch_at({2, 3});
  Packet p = make_packet(t, src, dst);
  std::vector<PortCand> out;
  algo.ports(t.ctx, p, src, out);
  // Distance 2: exactly the two aligning neighbours (2,0) and (0,3).
  ASSERT_EQ(out.size(), 2u);
  std::set<SwitchId> nbrs;
  for (const auto& pc : out) {
    EXPECT_EQ(pc.penalty, 0);
    nbrs.insert(t.hx->graph().port(src, pc.port).neighbor);
  }
  EXPECT_TRUE(nbrs.count(t.hx->switch_at({2, 0})));
  EXPECT_TRUE(nbrs.count(t.hx->switch_at({0, 3})));
}

TEST(Minimal, ReroutesAroundFaults) {
  auto t = make_net(2, 4);
  const SwitchId src = t.hx->switch_at({0, 0});
  const SwitchId dst = t.hx->switch_at({3, 0});
  // Kill the direct row link: distance becomes 2 through any detour.
  t.hx->graph().fail_link(t.hx->graph().port(src, t.hx->port_towards(src, 0, 3)).link);
  t.rebuild();
  EXPECT_EQ(t.dist->at(src, dst), 2);
  MinimalAlgorithm algo;
  Packet p = make_packet(t, src, dst);
  std::vector<PortCand> out;
  algo.ports(t.ctx, p, src, out);
  EXPECT_FALSE(out.empty());
  for (const auto& pc : out) {
    EXPECT_TRUE(t.hx->graph().port_alive(src, pc.port));
    EXPECT_EQ(t.dist->at(t.hx->graph().port(src, pc.port).neighbor, dst), 1);
  }
}

TEST(Minimal, MaxHopsIsDiameter) {
  auto t = make_net(3, 4);
  MinimalAlgorithm algo;
  EXPECT_EQ(algo.max_hops(t.ctx), 3);
}

TEST(Dor, SingleCandidateLowestDimensionFirst) {
  auto t = make_net(3, 4);
  DorAlgorithm algo;
  const SwitchId src = t.hx->switch_at({0, 1, 2});
  const SwitchId dst = t.hx->switch_at({3, 3, 2});
  Packet p = make_packet(t, src, dst);
  std::vector<PortCand> out;
  algo.ports(t.ctx, p, src, out);
  ASSERT_EQ(out.size(), 1u);
  // Dimension 0 corrected first: neighbour (3,1,2).
  EXPECT_EQ(t.hx->graph().port(src, out[0].port).neighbor,
            t.hx->switch_at({3, 1, 2}));
}

TEST(Dor, StuckWhenUniqueLinkDies) {
  // The paper's motivating failure: one dead link leaves DOR without any
  // route for the pairs that needed it (§1, §6).
  auto t = make_net(2, 4);
  const SwitchId src = t.hx->switch_at({0, 0});
  const SwitchId dst = t.hx->switch_at({2, 0});
  t.hx->graph().fail_link(
      t.hx->graph().port(src, t.hx->port_towards(src, 0, 2)).link);
  t.rebuild();
  DorAlgorithm algo;
  Packet p = make_packet(t, src, dst);
  std::vector<PortCand> out;
  algo.ports(t.ctx, p, src, out);
  EXPECT_TRUE(out.empty()); // no candidate at all: undeliverable
}

TEST(Valiant, TwoPhasesThroughIntermediate) {
  auto t = make_net(2, 4);
  ValiantAlgorithm algo;
  Packet p = make_packet(t, t.hx->switch_at({0, 0}), t.hx->switch_at({3, 3}));
  Rng rng(5);
  algo.on_inject(t.ctx, p, rng);
  ASSERT_GE(p.valiant_mid, 0);
  ASSERT_LT(p.valiant_mid, t.hx->num_switches());

  // Phase 1 candidates approach the intermediate.
  if (!p.valiant_phase2 && p.src_switch != p.valiant_mid) {
    std::vector<PortCand> out;
    algo.ports(t.ctx, p, p.src_switch, out);
    ASSERT_FALSE(out.empty());
    for (const auto& pc : out)
      EXPECT_EQ(t.dist->at(t.hx->graph().port(p.src_switch, pc.port).neighbor,
                           p.valiant_mid),
                t.dist->at(p.src_switch, p.valiant_mid) - 1);
  }

  // Arrival at the intermediate flips to phase 2.
  algo.on_arrival(t.ctx, p, p.valiant_mid);
  EXPECT_TRUE(p.valiant_phase2);
  std::vector<PortCand> out;
  if (p.valiant_mid != p.dst_switch) {
    algo.ports(t.ctx, p, p.valiant_mid, out);
    ASSERT_FALSE(out.empty());
    for (const auto& pc : out)
      EXPECT_EQ(t.dist->at(t.hx->graph().port(p.valiant_mid, pc.port).neighbor,
                           p.dst_switch),
                t.dist->at(p.valiant_mid, p.dst_switch) - 1);
  }
}

TEST(Valiant, MidEqualSourceStartsInPhase2) {
  auto t = make_net(2, 2);
  ValiantAlgorithm algo;
  Packet p = make_packet(t, 0, 3);
  // Draw intermediates until src comes up (small network, a few tries).
  Rng rng(1);
  bool saw = false;
  for (int i = 0; i < 64 && !saw; ++i) {
    algo.on_inject(t.ctx, p, rng);
    if (p.valiant_mid == p.src_switch) {
      EXPECT_TRUE(p.valiant_phase2);
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(Omni, MinimalAndDerouteCandidates) {
  auto t = make_net(2, 4);
  OmnidimensionalAlgorithm algo; // m = n = 2
  const SwitchId src = t.hx->switch_at({0, 0});
  const SwitchId dst = t.hx->switch_at({2, 0}); // aligned in dim 1
  Packet p = make_packet(t, src, dst);
  std::vector<PortCand> out;
  algo.ports(t.ctx, p, src, out);
  // Only dimension 0 is unaligned: 1 minimal + 2 deroutes (coords 1,3).
  ASSERT_EQ(out.size(), 3u);
  int minimal = 0, deroutes = 0;
  for (const auto& pc : out) {
    const SwitchId nbr = t.hx->graph().port(src, pc.port).neighbor;
    EXPECT_EQ(t.hx->coord(nbr, 1), 0) << "left an aligned dimension";
    if (pc.deroute) {
      EXPECT_EQ(pc.penalty, 64);
      ++deroutes;
    } else {
      EXPECT_EQ(pc.penalty, 0);
      EXPECT_EQ(nbr, dst);
      ++minimal;
    }
  }
  EXPECT_EQ(minimal, 1);
  EXPECT_EQ(deroutes, 2);
}

TEST(Omni, BudgetExhaustedLeavesOnlyMinimal) {
  auto t = make_net(2, 4);
  OmnidimensionalAlgorithm algo;
  Packet p = make_packet(t, t.hx->switch_at({0, 0}), t.hx->switch_at({2, 3}));
  p.deroutes = 2; // m = n = 2 spent
  std::vector<PortCand> out;
  algo.ports(t.ctx, p, p.src_switch, out);
  ASSERT_EQ(out.size(), 2u); // one aligning hop per unaligned dimension
  for (const auto& pc : out) EXPECT_FALSE(pc.deroute);
}

TEST(Omni, CommitCountsDeroutes) {
  auto t = make_net(2, 4);
  OmnidimensionalAlgorithm algo;
  const SwitchId src = t.hx->switch_at({0, 0});
  Packet p = make_packet(t, src, t.hx->switch_at({2, 0}));
  // Hop to (1,0): a deroute (target coord is 2).
  const Port q = t.hx->port_towards(src, 0, 1);
  algo.commit(t.ctx, p, src, {q, 64, true});
  EXPECT_EQ(p.deroutes, 1);
  // Hop to (2,0) from (1,0): minimal, count unchanged.
  const SwitchId mid = t.hx->switch_at({1, 0});
  algo.commit(t.ctx, p, mid, {t.hx->port_towards(mid, 0, 2), 0, false});
  EXPECT_EQ(p.deroutes, 1);
}

TEST(Omni, NeverLeavesAlignedDimensions) {
  auto t = make_net(3, 4);
  OmnidimensionalAlgorithm algo;
  const SwitchId src = t.hx->switch_at({1, 2, 3});
  const SwitchId dst = t.hx->switch_at({3, 2, 3}); // dims 1,2 aligned
  Packet p = make_packet(t, src, dst);
  std::vector<PortCand> out;
  algo.ports(t.ctx, p, src, out);
  for (const auto& pc : out)
    EXPECT_EQ(t.hx->port_dim(src, pc.port), 0);
}

TEST(Omni, SkipsFaultyPorts) {
  auto t = make_net(2, 4);
  const SwitchId src = t.hx->switch_at({0, 0});
  const SwitchId dst = t.hx->switch_at({2, 0});
  t.hx->graph().fail_link(
      t.hx->graph().port(src, t.hx->port_towards(src, 0, 2)).link);
  t.rebuild();
  OmnidimensionalAlgorithm algo;
  Packet p = make_packet(t, src, dst);
  std::vector<PortCand> out;
  algo.ports(t.ctx, p, src, out);
  // Minimal candidate gone; the two deroutes remain.
  ASSERT_EQ(out.size(), 2u);
  for (const auto& pc : out) EXPECT_TRUE(pc.deroute);
}

TEST(Omni, MaxHopsIsNPlusM) {
  auto t = make_net(3, 4);
  EXPECT_EQ(OmnidimensionalAlgorithm().max_hops(t.ctx), 6);
  EXPECT_EQ(OmnidimensionalAlgorithm(1).max_hops(t.ctx), 4);
}

TEST(Ladder, OneStepVcFollowsHops) {
  auto t = make_net(2, 4);
  LadderMechanism mech(std::make_unique<MinimalAlgorithm>(), 1, "test");
  Packet p = make_packet(t, t.hx->switch_at({0, 0}), t.hx->switch_at({1, 1}));
  std::vector<Candidate> out;
  RouteScratch scratch;
  mech.candidates(t.ctx, p, p.src_switch, scratch, out);
  ASSERT_FALSE(out.empty());
  for (const auto& c : out) EXPECT_EQ(c.vc, 0);
  p.hops = 1;
  out.clear();
  mech.candidates(t.ctx, p, t.hx->switch_at({1, 0}), scratch, out);
  for (const auto& c : out) EXPECT_EQ(c.vc, 1);
}

TEST(Ladder, TwoStepOffersPairOfVcs) {
  auto t = make_net(2, 4);
  LadderMechanism mech(std::make_unique<MinimalAlgorithm>(), 2, "Minimal");
  Packet p = make_packet(t, t.hx->switch_at({0, 0}), t.hx->switch_at({1, 1}));
  std::vector<Candidate> out;
  RouteScratch scratch;
  mech.candidates(t.ctx, p, p.src_switch, scratch, out);
  std::set<Vc> vcs;
  for (const auto& c : out) vcs.insert(c.vc);
  EXPECT_EQ(vcs, (std::set<Vc>{0, 1}));
  p.hops = 1;
  out.clear();
  mech.candidates(t.ctx, p, t.hx->switch_at({1, 0}), scratch, out);
  vcs.clear();
  for (const auto& c : out) vcs.insert(c.vc);
  EXPECT_EQ(vcs, (std::set<Vc>{2, 3}));
}

TEST(Ladder, SaturatesAtTopRung) {
  auto t = make_net(2, 4);
  LadderMechanism mech(std::make_unique<MinimalAlgorithm>(), 1, "test");
  Packet p = make_packet(t, t.hx->switch_at({0, 0}), t.hx->switch_at({1, 1}));
  p.hops = 9; // beyond the 4-VC ladder
  std::vector<Candidate> out;
  RouteScratch scratch;
  mech.candidates(t.ctx, p, p.src_switch, scratch, out);
  for (const auto& c : out) EXPECT_EQ(c.vc, 3);
}

TEST(Ladder, CommitIncrementsHops) {
  auto t = make_net(2, 4);
  LadderMechanism mech(std::make_unique<MinimalAlgorithm>(), 1, "test");
  Packet p = make_packet(t, 0, 5);
  mech.commit_hop(t.ctx, p, 0, {0, 0, 0, false, false});
  EXPECT_EQ(p.hops, 1);
}

TEST(Ladder, InjectionVcs) {
  auto t = make_net(2, 4);
  std::vector<Vc> vcs;
  LadderMechanism one(std::make_unique<MinimalAlgorithm>(), 1, "a");
  Packet p = make_packet(t, 0, 5);
  one.injection_vcs(t.ctx, p, vcs);
  EXPECT_EQ(vcs, (std::vector<Vc>{0}));
  vcs.clear();
  LadderMechanism two(std::make_unique<MinimalAlgorithm>(), 2, "b");
  two.injection_vcs(t.ctx, p, vcs);
  EXPECT_EQ(vcs, (std::vector<Vc>{0, 1}));
}

TEST(Factory, AllMechanismsConstructWithPaperNames) {
  const std::vector<std::pair<std::string, std::string>> expect = {
      {"minimal", "Minimal"},   {"dor", "DOR"},
      {"valiant", "Valiant"},   {"omniwar", "OmniWAR"},
      {"polarized", "Polarized"}, {"omnisp", "OmniSP"},
      {"polsp", "PolSP"},
  };
  for (const auto& [name, display] : expect) {
    auto m = make_mechanism(name);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->name(), display);
    EXPECT_EQ(m->needs_escape(), name == "omnisp" || name == "polsp");
  }
  EXPECT_EQ(mechanism_names().size(), 7u);
}

TEST(Factory, PolicySuffixSelectsCRoutDiscipline) {
  // The "@policy" suffix builds SurePath with an overridden CRout VC
  // discipline (the crout-policy ablation sweeps these); display name and
  // escape requirement are unchanged.
  for (const char* name :
       {"omnisp@free", "omnisp@monotone", "omnisp@rung", "omnisp@auto"}) {
    auto m = make_mechanism(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->name(), "OmniSP") << name;
    EXPECT_TRUE(m->needs_escape()) << name;
  }
  auto p = make_mechanism("polsp@free");
  EXPECT_EQ(p->name(), "PolSP");
  EXPECT_TRUE(p->needs_escape());
}

} // namespace
} // namespace hxsp
