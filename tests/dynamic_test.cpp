/// \file dynamic_test.cpp
/// Tests for the dynamic-fault extension (online BFS recovery) and the
/// Dragonfly builder used by the §7 topology study.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "topology/builders.hpp"

namespace hxsp {
namespace {

ExperimentSpec dyn_spec(const std::string& mech) {
  ExperimentSpec s;
  s.sides = {4, 4};
  s.servers_per_switch = 4;
  s.mechanism = mech;
  s.pattern = "uniform";
  s.sim.num_vcs = 4;
  s.warmup = 1000;
  s.measure = 6000;
  s.seed = 3;
  return s;
}

TEST(DynamicFaults, SurvivesMidRunFailures) {
  ExperimentSpec s = dyn_spec("polsp");
  Experiment e(s);
  HyperX scratch(s.sides, 4);
  Rng rng(5);
  const auto links = random_fault_links(scratch.graph(), 4, rng, true);
  std::vector<FaultEvent> events;
  for (int i = 0; i < 4; ++i)
    events.push_back({1500 + i * 1200, links[static_cast<std::size_t>(i)]});
  const DynamicResult res = e.run_load_dynamic(0.6, events);
  EXPECT_GT(res.row.accepted, 0.4);
  EXPECT_GE(res.dropped, 0);
  EXPECT_LT(res.dropped, 200); // only dead-wire queues are lost
}

TEST(DynamicFaults, ConvergesToStaticReference) {
  ExperimentSpec s = dyn_spec("omnisp");
  HyperX scratch(s.sides, 4);
  Rng rng(7);
  const auto links = random_fault_links(scratch.graph(), 3, rng, true);

  // Dynamic run with early failures and a long steady tail.
  Experiment e(s);
  std::vector<FaultEvent> events;
  for (int i = 0; i < 3; ++i)
    events.push_back({200 + 100 * i, links[static_cast<std::size_t>(i)]});
  const DynamicResult dyn = e.run_load_dynamic(0.5, events);

  // Static run with the same fault set.
  ExperimentSpec st = s;
  st.fault_links = links;
  Experiment es(st);
  const ResultRow ref = es.run_load(0.5);

  EXPECT_NEAR(dyn.row.accepted, ref.accepted, 0.06);
}

TEST(DynamicFaults, ExperimentReusableAfterDynamicRun) {
  ExperimentSpec s = dyn_spec("polsp");
  Experiment e(s);
  const double before = e.run_load(0.5).accepted;
  HyperX scratch(s.sides, 4);
  const LinkId victim = scratch.graph().port(0, 0).link;
  (void)e.run_load_dynamic(0.5, {{1500, victim}});
  // The injected fault was restored: the healthy rerun matches.
  const double after = e.run_load(0.5).accepted;
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(DynamicFaults, AlreadyDeadLinksAreSkipped) {
  ExperimentSpec s = dyn_spec("polsp");
  HyperX scratch(s.sides, 4);
  const LinkId victim = scratch.graph().port(0, 0).link;
  s.fault_links = {victim}; // statically dead
  Experiment e(s);
  const DynamicResult res = e.run_load_dynamic(0.5, {{1500, victim}});
  EXPECT_GT(res.row.accepted, 0.4);
  // A second run still sees the static fault (it was not "restored").
  const DynamicResult res2 = e.run_load_dynamic(0.5, {});
  EXPECT_GT(res2.row.accepted, 0.4);
}

TEST(DynamicFaults, DeterministicGivenSeed) {
  ExperimentSpec s = dyn_spec("omnisp");
  HyperX scratch(s.sides, 4);
  const LinkId victim = scratch.graph().port(5, 2).link;
  const DynamicResult a = Experiment(s).run_load_dynamic(0.6, {{2000, victim}});
  const DynamicResult b = Experiment(s).run_load_dynamic(0.6, {{2000, victim}});
  EXPECT_DOUBLE_EQ(a.row.accepted, b.row.accepted);
  EXPECT_EQ(a.dropped, b.dropped);
}

TEST(Dragonfly, CanonicalSizes) {
  // a=4, h=2: g = 9 groups, 36 switches; links = 9*C(4,2) + 9*4*2/2 = 90.
  const Graph df = make_dragonfly(4, 2);
  EXPECT_EQ(df.num_switches(), 36);
  EXPECT_EQ(df.num_links(), 9 * 6 + 9 * 4);
  for (SwitchId s = 0; s < df.num_switches(); ++s)
    EXPECT_EQ(df.degree(s), (4 - 1) + 2); // a-1 local + h global
  EXPECT_TRUE(df.connected());
}

TEST(Dragonfly, DiameterIsThree) {
  const Graph df = make_dragonfly(4, 2);
  const DistanceTable d(df);
  EXPECT_EQ(d.diameter(), 3); // local-global-local worst case
}

TEST(Dragonfly, OneGlobalLinkPerGroupPair) {
  const int a = 3, h = 2, groups = a * h + 1;
  const Graph df = make_dragonfly(a, h);
  std::vector<int> pair_links(static_cast<std::size_t>(groups * groups), 0);
  for (LinkId l = 0; l < df.num_links(); ++l) {
    const auto& e = df.link(l);
    const int ga = e.a / a, gb = e.b / a;
    if (ga != gb) ++pair_links[static_cast<std::size_t>(ga * groups + gb)];
  }
  for (int x = 0; x < groups; ++x)
    for (int y = 0; y < groups; ++y)
      if (x != y) {
        EXPECT_EQ(pair_links[static_cast<std::size_t>(x * groups + y)] +
                      pair_links[static_cast<std::size_t>(y * groups + x)],
                  1)
            << "groups " << x << "," << y;
      }
}

/// Mean greedy-escape route length over graph distance; -1 on walk failure.
double escape_walk_stretch(const Graph& g) {
  const DistanceTable dist(g);
  const EscapeUpDown esc(g, {.root = 0, .strict_phase = false,
                             .penalties = {}, .use_shortcuts = true});
  double sum = 0;
  long n = 0;
  std::vector<EscapeCand> cand;
  for (SwitchId x = 0; x < g.num_switches(); ++x)
    for (SwitchId y = 0; y < g.num_switches(); ++y) {
      if (x == y) continue;
      SwitchId c = x;
      int hops = 0;
      while (c != y) {
        if (hops > 4 * g.num_switches()) return -1;
        cand.clear();
        esc.candidates(c, y, false, cand);
        if (cand.empty()) return -1;
        const EscapeCand* best = &cand.front();
        for (const auto& ec : cand)
          if (ec.penalty < best->penalty) best = &ec;
        c = g.port(c, best->port).neighbor;
        ++hops;
      }
      sum += static_cast<double>(hops) / dist.at(x, y);
      ++n;
    }
  return sum / static_cast<double>(n);
}

TEST(Dragonfly, EscapeStretchExceedsHyperX) {
  // The quantified §7 claim: actual escape routes (greedy, shortcuts
  // included) track shortest paths on a HyperX much better than on a
  // Dragonfly of comparable size.
  HyperX hx({6, 6}, 1);
  const double sh = escape_walk_stretch(hx.graph());
  const double sd = escape_walk_stretch(make_dragonfly(4, 2));
  ASSERT_GT(sh, 0);
  ASSERT_GT(sd, 0);
  EXPECT_LT(sh, sd);
  EXPECT_LT(sh, 1.5); // HyperX escape stays close to shortest paths
}

} // namespace
} // namespace hxsp
