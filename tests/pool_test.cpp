/// \file pool_test.cpp
/// ObjectPool (util/pool.hpp): freelist recycling semantics, value-reset
/// on acquire, live accounting, unique_ptr integration — the guarantees
/// the engine's per-Network packet pool rests on.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "harness/experiment.hpp"
#include "sim/packet.hpp"
#include "util/pool.hpp"

namespace hxsp {
namespace {

TEST(Pool, AcquireReturnsDistinctLiveObjects) {
  ObjectPool<int> pool(4);
  std::set<int*> seen;
  std::vector<int*> held;
  for (int i = 0; i < 100; ++i) {
    int* p = pool.acquire();
    EXPECT_TRUE(seen.insert(p).second) << "reuse while live at #" << i;
    held.push_back(p);
  }
  EXPECT_EQ(pool.live(), 100u);
  EXPECT_GE(pool.capacity(), 100u);
  for (int* p : held) pool.release(p);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(Pool, RecyclesReleasedObjects) {
  ObjectPool<int> pool(8);
  int* a = pool.acquire();
  pool.release(a);
  // LIFO freelist: the freed object comes straight back.
  int* b = pool.acquire();
  EXPECT_EQ(a, b);
  pool.release(b);
  // Steady-state churn never grows the arena.
  const std::size_t cap = pool.capacity();
  for (int i = 0; i < 1000; ++i) pool.release(pool.acquire());
  EXPECT_EQ(pool.capacity(), cap);
}

TEST(Pool, AcquireValueResetsRecycledObjects) {
  ObjectPool<Packet> pool(2);
  Packet* p = pool.acquire();
  p->id = 42;
  p->hops = 7;
  p->in_escape = true;
  p->buf_head = 1234;
  pool.release(p);
  Packet* q = pool.acquire();
  ASSERT_EQ(p, q); // recycled...
  EXPECT_EQ(q->id, 0); // ...but indistinguishable from a fresh Packet
  EXPECT_EQ(q->hops, 0);
  EXPECT_FALSE(q->in_escape);
  EXPECT_EQ(q->buf_head, 0);
  EXPECT_EQ(q->src_server, kInvalid);
  pool.release(q);
}

TEST(Pool, NoReuseWhileLiveUnderChurn) {
  ObjectPool<Packet> pool(4);
  std::set<Packet*> live;
  std::vector<Packet*> held;
  // Interleaved acquire/release: a live object must never be handed out.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) {
      Packet* p = pool.acquire();
      ASSERT_TRUE(live.insert(p).second);
      held.push_back(p);
    }
    for (int i = 0; i < 5; ++i) {
      Packet* p = held.back();
      held.pop_back();
      live.erase(p);
      pool.release(p);
    }
  }
  EXPECT_EQ(pool.live(), live.size());
  for (Packet* p : held) pool.release(p);
}

TEST(Pool, UniquePtrReturnsToPool) {
  ObjectPool<Packet> pool(4);
  Packet* raw = nullptr;
  {
    ObjectPool<Packet>::UniquePtr p = pool.make();
    raw = p.get();
    p->id = 9;
    EXPECT_EQ(pool.live(), 1u);
  }
  EXPECT_EQ(pool.live(), 0u); // destruction released, not deleted
  ObjectPool<Packet>::UniquePtr q = pool.make();
  EXPECT_EQ(q.get(), raw); // recycled through the freelist
  EXPECT_EQ(q->id, 0);
}

TEST(Pool, IdStabilityAcrossRecycling) {
  // Engine contract: packet ids come from Network's counter, never from
  // the pool — recycling a Packet must not resurrect its previous id.
  ObjectPool<Packet> pool(2);
  std::int64_t next_id = 0;
  std::set<std::int64_t> seen_ids;
  for (int i = 0; i < 64; ++i) {
    ObjectPool<Packet>::UniquePtr p = pool.make();
    EXPECT_EQ(p->id, 0); // arrives blank
    p->id = ++next_id;
    EXPECT_TRUE(seen_ids.insert(p->id).second);
  }
}

TEST(Pool, EngineRecyclesEveryPacket) {
  // A drained network holds no packets: everything the servers generated
  // went back to the pool, and the arena stopped growing once the
  // steady-state footprint was reached.
  ExperimentSpec spec;
  spec.sides = {4, 4};
  spec.servers_per_switch = 2;
  spec.mechanism = "polsp";
  spec.pattern = "uniform";
  spec.sim.num_vcs = 4;
  Experiment e(spec);
  Network net(e.context(), e.mechanism(), e.traffic(), spec.sim,
              spec.resolved_servers_per_switch(), spec.seed);
  net.set_completion_load(64);
  ASSERT_TRUE(net.run_until_drained(400000));
  EXPECT_EQ(net.packet_pool().live(), 0u);
  EXPECT_EQ(net.packets_in_system(), 0);
  // 32 servers x 64 packets went through; the arena holds only the
  // peak-concurrent footprint (bounded by the finite buffers), not one
  // object per packet.
  EXPECT_EQ(net.metrics().total_consumed_packets(), 32 * 64);
  EXPECT_LT(net.packet_pool().capacity(), 32u * 64u);
}

TEST(Pool, GrowsByWholeChunks) {
  ObjectPool<int> pool(16);
  EXPECT_EQ(pool.capacity(), 0u);
  std::vector<int*> held;
  held.push_back(pool.acquire());
  EXPECT_EQ(pool.capacity(), 16u);
  for (int i = 0; i < 16; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.capacity(), 32u);
  for (int* p : held) pool.release(p);
}

} // namespace
} // namespace hxsp
