/// \file parallel_step_test.cpp
/// Deterministic intra-run parallel stepping: partitioning the candidate
/// phase across a worker pool must leave every simulation observable —
/// rates, latencies, tail percentiles, packet counts — bit-identical to
/// serial stepping at every thread count, for every mechanism family,
/// with faults, online fault events and the invariant auditor enabled.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace hxsp {
namespace {

/// Exact equality of every ResultRow field — doubles compared with ==,
/// because the claim is bit-identity, not tolerance.
void expect_identical(const ResultRow& a, const ResultRow& b,
                      const std::string& what) {
  EXPECT_EQ(a.mechanism, b.mechanism) << what;
  EXPECT_EQ(a.pattern, b.pattern) << what;
  EXPECT_EQ(a.offered, b.offered) << what;
  EXPECT_EQ(a.generated, b.generated) << what;
  EXPECT_EQ(a.accepted, b.accepted) << what;
  EXPECT_EQ(a.avg_latency, b.avg_latency) << what;
  EXPECT_EQ(a.jain, b.jain) << what;
  EXPECT_EQ(a.escape_frac, b.escape_frac) << what;
  EXPECT_EQ(a.forced_frac, b.forced_frac) << what;
  EXPECT_EQ(a.p99_latency, b.p99_latency) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.packets, b.packets) << what;
}

ExperimentSpec small_spec(const std::string& mechanism) {
  ExperimentSpec spec;
  spec.sides = {4, 4};
  spec.mechanism = mechanism;
  spec.pattern = "uniform";
  spec.sim.num_vcs = 4;
  spec.warmup = 400;
  spec.measure = 1200;
  spec.seed = 17;
  return spec;
}

TEST(ParallelStep, BitIdenticalAcrossThreadCounts) {
  // Ladder (minimal), plain polarized, and SurePath (escape subnetwork):
  // the three mechanism families exercise every candidates() code path.
  for (const std::string mech : {"minimal", "polarized", "polsp"}) {
    Experiment e(small_spec(mech));
    e.set_step_threads(0);
    const ResultRow serial = e.run_load(0.6);
    EXPECT_GT(serial.packets, 0) << mech;
    for (const int threads : {1, 2, 8}) {
      e.set_step_threads(threads);
      expect_identical(e.run_load(0.6), serial,
                       mech + " threads=" + std::to_string(threads));
    }
    e.set_step_threads(0);
    expect_identical(e.run_load(0.6), serial, mech + " back-to-serial");
  }
}

TEST(ParallelStep, BitIdenticalWithStaticFaults) {
  ExperimentSpec spec = small_spec("polsp");
  spec.fault_links = {0, 7, 13, 21};
  Experiment e(spec);
  const ResultRow serial = e.run_load(0.5);
  for (const int threads : {1, 2, 8}) {
    e.set_step_threads(threads);
    expect_identical(e.run_load(0.5), serial,
                     "faulted polsp threads=" + std::to_string(threads));
  }
}

TEST(ParallelStep, BitIdenticalThroughDynamicFaultRebuilds) {
  // Online fault events exercise table rebuilds (and candidate-cache
  // invalidation) while the pool is attached.
  const std::vector<FaultEvent> events = {{500, 3}, {900, 11}};
  ExperimentSpec spec = small_spec("polsp");
  Experiment e(spec);
  const DynamicResult serial = e.run_load_dynamic(0.4, events);
  e.set_step_threads(2);
  const DynamicResult par = e.run_load_dynamic(0.4, events);
  expect_identical(par.row, serial.row, "dynamic faults threads=2");
  EXPECT_EQ(par.dropped, serial.dropped);
}

TEST(ParallelStep, BitIdenticalCompletionMode) {
  ExperimentSpec spec = small_spec("minimal");
  Experiment e(spec);
  const CompletionResult serial = e.run_completion(20, 100, 100000);
  ASSERT_TRUE(serial.drained);
  e.set_step_threads(3);
  const CompletionResult par = e.run_completion(20, 100, 100000);
  EXPECT_TRUE(par.drained);
  EXPECT_EQ(par.completion_time, serial.completion_time);
}

TEST(ParallelStep, BitIdenticalWorkloadKind) {
  // Message-level workloads drive the Consume -> workload-callback path
  // through the sharded event application (Consume stays serial; the
  // callback order must match exactly or message completion cycles move).
  // The auditor cross-checks the wheel's ring-buffer slots every pass.
  ExperimentSpec spec = small_spec("polsp");
  spec.sim.audit_interval = 512;
  WorkloadParams wp;
  wp.name = "alltoall";
  wp.msg_packets = 2;
  Experiment e(spec);
  const WorkloadResult serial = e.run_workload(wp, 500, 400000);
  ASSERT_TRUE(serial.drained);
  for (const int threads : {1, 2, 8}) {
    e.set_step_threads(threads);
    const WorkloadResult par = e.run_workload(wp, 500, 400000);
    const std::string what = "workload threads=" + std::to_string(threads);
    EXPECT_TRUE(par.drained) << what;
    EXPECT_EQ(par.completion_time, serial.completion_time) << what;
    EXPECT_EQ(par.phase_cycles, serial.phase_cycles) << what;
    EXPECT_EQ(par.num_messages, serial.num_messages) << what;
    EXPECT_EQ(par.total_packets, serial.total_packets) << what;
    EXPECT_EQ(par.avg_msg_latency, serial.avg_msg_latency) << what;
    EXPECT_EQ(par.p50_msg_latency, serial.p50_msg_latency) << what;
    EXPECT_EQ(par.p99_msg_latency, serial.p99_msg_latency) << what;
  }
}

TEST(ParallelStep, BitIdenticalMultitenantKind) {
  // Multi-tenant runs overlap several workloads on one fabric; admission
  // and every per-tenant SLO figure must be untouched by the thread count.
  ExperimentSpec spec = small_spec("polsp");
  spec.sim.audit_interval = 512;
  MultitenantParams mp;
  mp.isolated_baseline = false;
  JobSpec j0, j1;
  j0.workload.name = "alltoall";
  j0.workload.msg_packets = 2;
  j0.demand = 10;
  j0.arrival = 0;
  j1.workload.name = "ring_allreduce";
  j1.workload.msg_packets = 2;
  j1.demand = 6;
  j1.arrival = 100;
  mp.jobs = {j0, j1};
  Experiment e(spec);
  const MultitenantResult serial = e.run_multitenant(mp, 500, 400000);
  ASSERT_TRUE(serial.drained);
  for (const int threads : {1, 2, 8}) {
    e.set_step_threads(threads);
    const MultitenantResult par = e.run_multitenant(mp, 500, 400000);
    const std::string what = "multitenant threads=" + std::to_string(threads);
    EXPECT_EQ(par.completion_time, serial.completion_time) << what;
    EXPECT_EQ(par.total_packets, serial.total_packets) << what;
    ASSERT_EQ(par.jobs.size(), serial.jobs.size()) << what;
    for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
      const TenantJobStats& a = par.jobs[i];
      const TenantJobStats& b = serial.jobs[i];
      EXPECT_EQ(a.admitted, b.admitted) << what << " job " << i;
      EXPECT_EQ(a.completed, b.completed) << what << " job " << i;
      EXPECT_EQ(a.num_messages, b.num_messages) << what << " job " << i;
      EXPECT_EQ(a.total_packets, b.total_packets) << what << " job " << i;
      EXPECT_EQ(a.avg_msg_latency, b.avg_msg_latency) << what << " job " << i;
      EXPECT_EQ(a.p50_msg_latency, b.p50_msg_latency) << what << " job " << i;
      EXPECT_EQ(a.p99_msg_latency, b.p99_msg_latency) << what << " job " << i;
    }
  }
}

TEST(ParallelStep, AuditorStaysGreenUnderPool) {
  // The invariant auditor recomputes every incrementally maintained
  // structure from scratch; running it every 256 cycles with the pool
  // attached proves the parallel candidate phase leaves no drift.
  ExperimentSpec spec = small_spec("polsp");
  spec.sim.audit_interval = 256;
  Experiment e(spec);
  e.set_step_threads(4);
  const ResultRow row = e.run_load(0.7);
  EXPECT_GT(row.packets, 0);
}

} // namespace
} // namespace hxsp
