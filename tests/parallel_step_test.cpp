/// \file parallel_step_test.cpp
/// Deterministic intra-run parallel stepping: partitioning the candidate
/// phase across a worker pool must leave every simulation observable —
/// rates, latencies, tail percentiles, packet counts — bit-identical to
/// serial stepping at every thread count, for every mechanism family,
/// with faults, online fault events and the invariant auditor enabled.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace hxsp {
namespace {

/// Exact equality of every ResultRow field — doubles compared with ==,
/// because the claim is bit-identity, not tolerance.
void expect_identical(const ResultRow& a, const ResultRow& b,
                      const std::string& what) {
  EXPECT_EQ(a.mechanism, b.mechanism) << what;
  EXPECT_EQ(a.pattern, b.pattern) << what;
  EXPECT_EQ(a.offered, b.offered) << what;
  EXPECT_EQ(a.generated, b.generated) << what;
  EXPECT_EQ(a.accepted, b.accepted) << what;
  EXPECT_EQ(a.avg_latency, b.avg_latency) << what;
  EXPECT_EQ(a.jain, b.jain) << what;
  EXPECT_EQ(a.escape_frac, b.escape_frac) << what;
  EXPECT_EQ(a.forced_frac, b.forced_frac) << what;
  EXPECT_EQ(a.p99_latency, b.p99_latency) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.packets, b.packets) << what;
}

ExperimentSpec small_spec(const std::string& mechanism) {
  ExperimentSpec spec;
  spec.sides = {4, 4};
  spec.mechanism = mechanism;
  spec.pattern = "uniform";
  spec.sim.num_vcs = 4;
  spec.warmup = 400;
  spec.measure = 1200;
  spec.seed = 17;
  return spec;
}

TEST(ParallelStep, BitIdenticalAcrossThreadCounts) {
  // Ladder (minimal), plain polarized, and SurePath (escape subnetwork):
  // the three mechanism families exercise every candidates() code path.
  for (const std::string mech : {"minimal", "polarized", "polsp"}) {
    Experiment e(small_spec(mech));
    e.set_step_threads(0);
    const ResultRow serial = e.run_load(0.6);
    EXPECT_GT(serial.packets, 0) << mech;
    for (const int threads : {1, 2, 8}) {
      e.set_step_threads(threads);
      expect_identical(e.run_load(0.6), serial,
                       mech + " threads=" + std::to_string(threads));
    }
    e.set_step_threads(0);
    expect_identical(e.run_load(0.6), serial, mech + " back-to-serial");
  }
}

TEST(ParallelStep, BitIdenticalWithStaticFaults) {
  ExperimentSpec spec = small_spec("polsp");
  spec.fault_links = {0, 7, 13, 21};
  Experiment e(spec);
  const ResultRow serial = e.run_load(0.5);
  e.set_step_threads(2);
  expect_identical(e.run_load(0.5), serial, "faulted polsp threads=2");
}

TEST(ParallelStep, BitIdenticalThroughDynamicFaultRebuilds) {
  // Online fault events exercise table rebuilds (and candidate-cache
  // invalidation) while the pool is attached.
  const std::vector<FaultEvent> events = {{500, 3}, {900, 11}};
  ExperimentSpec spec = small_spec("polsp");
  Experiment e(spec);
  const DynamicResult serial = e.run_load_dynamic(0.4, events);
  e.set_step_threads(2);
  const DynamicResult par = e.run_load_dynamic(0.4, events);
  expect_identical(par.row, serial.row, "dynamic faults threads=2");
  EXPECT_EQ(par.dropped, serial.dropped);
}

TEST(ParallelStep, BitIdenticalCompletionMode) {
  ExperimentSpec spec = small_spec("minimal");
  Experiment e(spec);
  const CompletionResult serial = e.run_completion(20, 100, 100000);
  ASSERT_TRUE(serial.drained);
  e.set_step_threads(3);
  const CompletionResult par = e.run_completion(20, 100, 100000);
  EXPECT_TRUE(par.drained);
  EXPECT_EQ(par.completion_time, serial.completion_time);
}

TEST(ParallelStep, AuditorStaysGreenUnderPool) {
  // The invariant auditor recomputes every incrementally maintained
  // structure from scratch; running it every 256 cycles with the pool
  // attached proves the parallel candidate phase leaves no drift.
  ExperimentSpec spec = small_spec("polsp");
  spec.sim.audit_interval = 256;
  Experiment e(spec);
  e.set_step_threads(4);
  const ResultRow row = e.run_load(0.7);
  EXPECT_GT(row.packets, 0);
}

} // namespace
} // namespace hxsp
